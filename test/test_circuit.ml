(* Tests for waveforms, the MOSFET model and netlist editing. *)

module W = Dramstress_circuit.Waveform
module M = Dramstress_circuit.Mosfet
module D = Dramstress_circuit.Device
module N = Dramstress_circuit.Netlist

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1.0 +. Float.abs b)

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Waveform                                                            *)
(* ------------------------------------------------------------------ *)

let test_dc () = check_float "dc" 2.4 (W.eval (W.dc 2.4) 123.0)

let test_pulse_shape () =
  let p =
    W.pulse ~v0:0.0 ~v1:1.0 ~delay:10.0 ~rise:2.0 ~width:5.0 ~fall:2.0 ()
  in
  check_float "before" 0.0 (W.eval p 5.0);
  check_float "mid rise" 0.5 (W.eval p 11.0);
  check_float "plateau" 1.0 (W.eval p 13.0);
  check_float "mid fall" 0.5 (W.eval p 18.0);
  check_float "after" 0.0 (W.eval p 25.0)

let test_pulse_periodic () =
  let p =
    W.pulse ~period:20.0 ~v0:0.0 ~v1:1.0 ~delay:0.0 ~rise:1.0 ~width:4.0
      ~fall:1.0 ()
  in
  check_float "first plateau" 1.0 (W.eval p 2.0);
  check_float "second plateau" 1.0 (W.eval p 22.0);
  check_float "gap" 0.0 (W.eval p 10.0);
  check_float "second gap" 0.0 (W.eval p 30.0)

let test_pulse_invalid () =
  Alcotest.check_raises "negative rise"
    (Invalid_argument "Waveform.pulse: negative duration") (fun () ->
      ignore
        (W.pulse ~v0:0.0 ~v1:1.0 ~delay:0.0 ~rise:(-1.0) ~width:1.0 ~fall:0.0
           ()))

let test_pwl () =
  let p = W.pwl [ (0.0, 0.0); (1.0, 2.0); (3.0, 0.0) ] in
  check_float "hold before" 0.0 (W.eval p (-1.0));
  check_float "rise" 1.0 (W.eval p 0.5);
  check_float "fall" 1.0 (W.eval p 2.0);
  check_float "hold after" 0.0 (W.eval p 10.0)

let test_pwl_invalid () =
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Waveform.pwl: breakpoints must strictly increase")
    (fun () -> ignore (W.pwl [ (1.0, 0.0); (1.0, 1.0) ]))

let test_pwl_steps () =
  let p = W.pwl_steps ~t_edge:1.0 0.0 [ (10.0, 2.0); (20.0, 0.5) ] in
  check_float "initial" 0.0 (W.eval p 5.0);
  check_float "after first step" 2.0 (W.eval p 15.0);
  check_float "after second step" 0.5 (W.eval p 25.0);
  check_float "mid edge" 1.0 (W.eval p 10.5)

let test_shift () =
  let p = W.shift 5.0 (W.pwl [ (0.0, 0.0); (1.0, 1.0) ]) in
  check_float "shifted" 0.0 (W.eval p 4.9);
  check_float "shifted end" 1.0 (W.eval p 6.0)

let test_breakpoints () =
  let p =
    W.pulse ~v0:0.0 ~v1:1.0 ~delay:10.0 ~rise:2.0 ~width:5.0 ~fall:2.0 ()
  in
  Alcotest.(check (list (float 1e-9)))
    "pulse corners" [ 10.0; 12.0; 17.0; 19.0 ]
    (W.breakpoints ~until:100.0 p);
  Alcotest.(check (list (float 1e-9))) "dc" [] (W.breakpoints ~until:1.0 (W.dc 1.0))

let prop_pulse_bounded =
  QCheck.Test.make ~count:200 ~name:"pulse value stays within [v0, v1]"
    QCheck.(float_range 0.0 100.0)
    (fun t ->
      let p =
        W.pulse ~period:25.0 ~v0:(-1.0) ~v1:3.0 ~delay:2.0 ~rise:1.5
          ~width:6.0 ~fall:2.5 ()
      in
      let v = W.eval p t in
      v >= -1.0 -. 1e-12 && v <= 3.0 +. 1e-12)

(* ------------------------------------------------------------------ *)
(* Mosfet                                                              *)
(* ------------------------------------------------------------------ *)

let nmos = M.nmos ~name:"n" ~vt0:0.5 ~kp:1e-4 ()
let pmos = M.pmos ~name:"p" ~vt0:0.5 ~kp:1e-4 ()
let temp = 300.15

let test_mosfet_off () =
  let e = M.ids nmos ~temp ~vgs:0.0 ~vds:1.0 in
  Alcotest.(check bool) "leakage small" true (e.M.id < 1e-9 && e.M.id >= 0.0)

let test_mosfet_on_saturation () =
  let e = M.ids nmos ~temp ~vgs:1.5 ~vds:2.0 in
  (* square-law estimate kp/(2 n) (vgs-vt)^2 = 1e-4 / 2.8 ~ 3.6e-5 *)
  Alcotest.(check bool) "order of magnitude" true (e.M.id > 1e-5 && e.M.id < 2e-4);
  Alcotest.(check bool) "gm positive" true (e.M.gm > 0.0);
  Alcotest.(check bool) "gds positive" true (e.M.gds > 0.0)

let test_mosfet_triode_vs_saturation () =
  let tri = M.ids nmos ~temp ~vgs:2.0 ~vds:0.1 in
  let sat = M.ids nmos ~temp ~vgs:2.0 ~vds:2.0 in
  Alcotest.(check bool) "triode smaller" true (tri.M.id < sat.M.id)

let test_mosfet_symmetry () =
  (* swapping source and drain reverses the current *)
  let fwd = M.ids nmos ~temp ~vgs:1.5 ~vds:1.0 in
  let rev = M.ids nmos ~temp ~vgs:0.5 ~vds:(-1.0) in
  (* rev has vgd = 0.5 - (-1.0) = 1.5 as the mirrored vgs *)
  check_float ~eps:1e-9 "mirror current" (-.fwd.M.id) rev.M.id

let test_pmos_mirror () =
  let n = M.ids nmos ~temp ~vgs:1.5 ~vds:1.0 in
  let p = M.ids pmos ~temp ~vgs:(-1.5) ~vds:(-1.0) in
  check_float "pmos mirrors nmos" (-.n.M.id) p.M.id

let test_mosfet_temperature_mobility () =
  (* strong inversion: hotter -> lower current (mobility dominates) *)
  let cold = M.ids nmos ~temp:(273.15 -. 33.0) ~vgs:2.0 ~vds:2.0 in
  let hot = M.ids nmos ~temp:(273.15 +. 87.0) ~vgs:2.0 ~vds:2.0 in
  Alcotest.(check bool) "Ion falls with T" true (cold.M.id > hot.M.id)

let test_mosfet_temperature_leakage () =
  (* sub-threshold: hotter -> much higher leakage *)
  let cold = M.ids nmos ~temp:(273.15 -. 33.0) ~vgs:0.0 ~vds:1.0 in
  let hot = M.ids nmos ~temp:(273.15 +. 87.0) ~vgs:0.0 ~vds:1.0 in
  Alcotest.(check bool) "leakage rises with T" true
    (hot.M.id > 100.0 *. cold.M.id)

let test_mosfet_vth_temperature () =
  let vth_cold = M.vth nmos ~temp:(273.15 -. 33.0) in
  let vth_hot = M.vth nmos ~temp:(273.15 +. 87.0) in
  Alcotest.(check bool) "Vth falls with T" true (vth_cold > vth_hot)

let fd_derivative f x =
  let h = 1e-6 in
  (f (x +. h) -. f (x -. h)) /. (2.0 *. h)

let prop_gm_matches_fd =
  QCheck.Test.make ~count:200 ~name:"gm matches finite differences"
    QCheck.(pair (float_range (-0.5) 2.5) (float_range (-2.0) 2.5))
    (fun (vgs, vds) ->
      let e = M.ids nmos ~temp ~vgs ~vds in
      let fd = fd_derivative (fun v -> (M.ids nmos ~temp ~vgs:v ~vds).M.id) vgs in
      Float.abs (e.M.gm -. fd) <= 1e-6 +. (1e-3 *. Float.abs fd))

let prop_gds_matches_fd =
  QCheck.Test.make ~count:200 ~name:"gds matches finite differences"
    QCheck.(pair (float_range (-0.5) 2.5) (float_range (-2.0) 2.5))
    (fun (vgs, vds) ->
      let e = M.ids nmos ~temp ~vgs ~vds in
      let fd = fd_derivative (fun v -> (M.ids nmos ~temp ~vgs ~vds:v).M.id) vds in
      Float.abs (e.M.gds -. fd) <= 1e-6 +. (1e-3 *. Float.abs fd))

let prop_current_sign =
  QCheck.Test.make ~count:200 ~name:"NMOS current sign follows vds"
    QCheck.(pair (float_range 0.0 2.5) (float_range (-2.5) 2.5))
    (fun (vgs, vds) ->
      let e = M.ids nmos ~temp ~vgs ~vds in
      if vds > 1e-9 then e.M.id >= 0.0
      else if vds < -1e-9 then e.M.id <= 0.0
      else Float.abs e.M.id < 1e-9)

(* ------------------------------------------------------------------ *)
(* Netlist                                                             *)
(* ------------------------------------------------------------------ *)

let test_netlist_nodes () =
  let nl = N.create () in
  let a = N.node nl "a" in
  let a' = N.node nl "a" in
  Alcotest.(check int) "interned" a a';
  Alcotest.(check int) "ground id" 0 N.ground;
  Alcotest.(check string) "name" "a" (N.node_name nl a);
  Alcotest.(check (option int)) "find" (Some a) (N.find_node nl "a");
  Alcotest.(check (option int)) "missing" None (N.find_node nl "zz")

let test_netlist_duplicate_device () =
  let nl = N.create () in
  N.resistor nl ~name:"r1" "a" "0" 100.0;
  Alcotest.check_raises "dup" (Invalid_argument "Netlist.add: duplicate device \"r1\"")
    (fun () -> N.resistor nl ~name:"r1" "b" "0" 100.0)

let test_netlist_compile_counts () =
  let nl = N.create () in
  N.vsource nl ~name:"vdd" "vdd" "0" (W.dc 2.4);
  N.resistor nl ~name:"r1" "vdd" "out" 1000.0;
  N.capacitor nl ~name:"c1" "out" "0" 1e-12;
  let c = N.compile nl in
  Alcotest.(check int) "nodes (gnd, vdd, out)" 3 c.N.n_nodes;
  Alcotest.(check int) "one vsource" 1 c.N.n_vsources;
  Alcotest.(check int) "devices" 3 (Array.length c.N.devices)

let test_netlist_dangling () =
  let nl = N.create () in
  ignore (N.node nl "floating");
  N.resistor nl ~name:"r1" "a" "0" 1.0;
  Alcotest.check_raises "dangling"
    (N.Invalid [ N.Floating_node { node = "floating" } ])
    (fun () -> ignore (N.compile nl))

let test_netlist_diagnostics_collected () =
  (* one compile reports every problem, not just the first symptom *)
  let nl = N.create () in
  ignore (N.node nl "floating");
  (* raw add bypasses the smart-constructor finiteness/positivity checks *)
  N.add nl
    (D.Resistor { name = "r_nan"; a = N.node nl "a"; b = 0; r = Float.nan });
  N.add nl (D.Capacitor { name = "c_zero"; a = N.node nl "a"; b = 0; c = 0.0 });
  match N.compile nl with
  | _ -> Alcotest.fail "expected Netlist.Invalid"
  | exception N.Invalid diags ->
    let has p = List.exists p diags in
    Alcotest.(check int) "all three diagnostics" 3 (List.length diags);
    Alcotest.(check bool) "floating" true
      (has (function N.Floating_node { node } -> node = "floating" | _ -> false));
    Alcotest.(check bool) "non-finite r" true
      (has (function
        | N.Non_finite_param { device = "r_nan"; param = "r"; value } ->
          Float.is_nan value
        | _ -> false));
    Alcotest.(check bool) "zero capacitance" true
      (has (function
        | N.Zero_capacitance { device = "c_zero" } -> true
        | _ -> false))

let test_netlist_nonfinite_dc_source () =
  let nl = N.create () in
  N.vsource nl ~name:"vdd" "vdd" "0" (W.dc Float.infinity);
  N.resistor nl ~name:"r" "vdd" "0" 1000.0;
  match N.compile nl with
  | _ -> Alcotest.fail "expected Netlist.Invalid"
  | exception N.Invalid [ N.Non_finite_param { device; param; _ } ] ->
    Alcotest.(check string) "device" "vdd" device;
    Alcotest.(check string) "param" "v.dc" param
  | exception N.Invalid _ -> Alcotest.fail "expected a single diagnostic"

let test_insert_series () =
  let nl = N.create () in
  N.vsource nl ~name:"v" "in" "0" (W.dc 1.0);
  N.resistor nl ~name:"r" "in" "out" 1000.0;
  N.capacitor nl ~name:"c" "out" "0" 1e-12;
  N.insert_series nl ~name:"r_open" ~device:"r" ~terminal:D.Term_b ~r:5e5;
  let c = N.compile nl in
  Alcotest.(check int) "extra node" 4 c.N.n_nodes;
  (* the original resistor must no longer touch "out" directly *)
  let r_dev =
    Array.to_list c.N.devices
    |> List.find (fun d -> D.name d = "r")
  in
  let out_id = N.compiled_node c "out" in
  Alcotest.(check bool) "rewired" false (List.mem out_id (D.nodes r_dev))

let test_insert_series_missing () =
  let nl = N.create () in
  Alcotest.check_raises "missing"
    (N.Invalid
       [ N.Unknown_device { context = "Netlist.insert_series"; device = "none" } ])
    (fun () ->
      N.insert_series nl ~name:"x" ~device:"none" ~terminal:D.Term_a ~r:1.0)

let test_replace_remove () =
  let nl = N.create () in
  N.resistor nl ~name:"r" "a" "0" 1000.0;
  N.replace_device nl "r" (D.Resistor { name = "r"; a = N.node nl "a"; b = 0; r = 2000.0 });
  (match N.find_device nl "r" with
  | Some (D.Resistor { r; _ }) -> check_float "replaced" 2000.0 r
  | Some _ | None -> Alcotest.fail "expected replaced resistor");
  N.remove_device nl "r";
  Alcotest.(check bool) "removed" true (N.find_device nl "r" = None)

let test_terminal_ops () =
  let m =
    D.Mosfet { name = "m"; d = 1; g = 2; s = 3; model = nmos; m = 1.0 }
  in
  Alcotest.(check int) "drain" 1 (D.terminal_node m D.Term_a);
  Alcotest.(check int) "gate" 2 (D.terminal_node m D.Term_gate);
  Alcotest.(check int) "source" 3 (D.terminal_node m D.Term_b);
  let m' = D.with_terminal m D.Term_gate 9 in
  Alcotest.(check int) "rewired gate" 9 (D.terminal_node m' D.Term_gate);
  let r = D.Resistor { name = "r"; a = 1; b = 2; r = 1.0 } in
  Alcotest.check_raises "gate on resistor"
    (Invalid_argument "Device.terminal_node: Term_gate on a two-terminal device")
    (fun () -> ignore (D.terminal_node r D.Term_gate))

(* ------------------------------------------------------------------ *)
(* Spice deck parser                                                   *)
(* ------------------------------------------------------------------ *)

module Sp = Dramstress_circuit.Spice

let test_parse_value () =
  check_float "kilo" 2.0e5 (Sp.parse_value "200k");
  check_float "femto" 1e-13 (Sp.parse_value "100f");
  check_float "meg" 3e6 (Sp.parse_value "3meg");
  check_float "plain" 42.0 (Sp.parse_value "42");
  check_float "negative nano" (-6e-8) (Sp.parse_value "-60n");
  check_float "volts unit" 2.4 (Sp.parse_value "2.4v");
  check_float "nano with unit" 6e-8 (Sp.parse_value "60ns");
  Alcotest.(check bool) "junk raises" true
    (match Sp.parse_value "xyz" with
    | exception Failure _ -> true
    | _ -> false)

let test_parse_basic_deck () =
  let deck =
    {|* a divider with a capacitor
Vdd vdd 0 DC 2.4
R1 vdd mid 1k
R2 mid 0 3k  ; load
C1 mid 0 100f
|}
  in
  let nl = Sp.parse deck in
  let c = N.compile nl in
  Alcotest.(check int) "devices" 4 (Array.length c.N.devices);
  Alcotest.(check int) "nodes" 3 c.N.n_nodes;
  match N.find_device nl "R2" with
  | Some (D.Resistor { r; _ }) -> check_float "r2" 3000.0 r
  | _ -> Alcotest.fail "R2 missing"

let test_parse_sources () =
  let deck =
    {|Vp a 0 PULSE(0 3.2 6n 0.5n 48n 0.5n 60n)
Vw b 0 PWL(0 0 1n 1 2n 0)
Ix a b DC 1m
R1 a b 1k
|}
  in
  let nl = Sp.parse deck in
  (match N.find_device nl "Vp" with
  | Some (D.Vsource { wave; _ }) ->
    check_float "pulse plateau" 3.2 (W.eval wave 10e-9);
    check_float "pulse periodic" 3.2 (W.eval wave 70e-9)
  | _ -> Alcotest.fail "Vp missing");
  match N.find_device nl "Vw" with
  | Some (D.Vsource { wave; _ }) -> check_float "pwl mid" 0.5 (W.eval wave 0.5e-9)
  | _ -> Alcotest.fail "Vw missing"

let test_parse_mosfet_and_switch () =
  let deck =
    {|.MODEL nch NMOS (VT0=0.7 KP=1e-4 TC=1m MU=2)
Vd d 0 DC 2.4
M1 d g s nch
Ms d g s2 nch M=2
S1 s 0 PULSE(0 1 10n 1n 20n 1n) GON=1e-3 GOFF=1e-12
C1 s 0 1p
C2 s2 0 1p
Vg g 0 DC 2.4
|}
  in
  let nl = Sp.parse deck in
  (match N.find_device nl "M1" with
  | Some (D.Mosfet { model; m; _ }) ->
    check_float "vt0" 0.7 model.M.vt0;
    check_float "tempco" 1e-3 model.M.vt_tc;
    check_float "mult" 1.0 m
  | _ -> Alcotest.fail "M1 missing");
  (match N.find_device nl "Ms" with
  | Some (D.Mosfet { m; _ }) -> check_float "mult 2" 2.0 m
  | _ -> Alcotest.fail "Ms missing");
  match N.find_device nl "S1" with
  | Some (D.Switch { g_on; threshold; _ }) ->
    check_float "gon" 1e-3 g_on;
    check_float "default vt" 0.5 threshold
  | _ -> Alcotest.fail "S1 missing"

let test_parse_errors () =
  let expect_error deck =
    match Sp.parse deck with
    | exception Sp.Parse_error _ -> ()
    | _ -> Alcotest.failf "deck should not parse: %s" deck
  in
  expect_error "R1 a b";
  expect_error "Vx a 0 PULSE(1 2)";
  expect_error "M1 d g s unknown_model";
  expect_error "Q1 a b c";
  expect_error ".tran 1n 60n"

let test_parse_roundtrip_simulation () =
  (* the parsed deck must simulate identically to a built netlist *)
  let deck = {|V1 in 0 DC 1
R1 in out 1k
C1 out 0 1n
|} in
  let c = N.compile (Sp.parse deck) in
  Alcotest.(check int) "compiled" 3 c.N.n_nodes

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "dramstress_circuit"
    [
      ( "waveform",
        [
          tc "dc" test_dc;
          tc "pulse shape" test_pulse_shape;
          tc "periodic pulse" test_pulse_periodic;
          tc "pulse validation" test_pulse_invalid;
          tc "pwl" test_pwl;
          tc "pwl validation" test_pwl_invalid;
          tc "pwl_steps" test_pwl_steps;
          tc "shift" test_shift;
          tc "breakpoints" test_breakpoints;
          QCheck_alcotest.to_alcotest prop_pulse_bounded;
        ] );
      ( "mosfet",
        [
          tc "off leakage" test_mosfet_off;
          tc "saturation magnitude" test_mosfet_on_saturation;
          tc "triode vs saturation" test_mosfet_triode_vs_saturation;
          tc "source/drain symmetry" test_mosfet_symmetry;
          tc "pmos mirrors nmos" test_pmos_mirror;
          tc "mobility falls with T" test_mosfet_temperature_mobility;
          tc "leakage rises with T" test_mosfet_temperature_leakage;
          tc "Vth falls with T" test_mosfet_vth_temperature;
          QCheck_alcotest.to_alcotest prop_gm_matches_fd;
          QCheck_alcotest.to_alcotest prop_gds_matches_fd;
          QCheck_alcotest.to_alcotest prop_current_sign;
        ] );
      ( "spice",
        [
          tc "value suffixes" test_parse_value;
          tc "basic deck" test_parse_basic_deck;
          tc "pulse and pwl sources" test_parse_sources;
          tc "mosfet models and switches" test_parse_mosfet_and_switch;
          tc "error reporting" test_parse_errors;
          tc "compiles for simulation" test_parse_roundtrip_simulation;
        ] );
      ( "netlist",
        [
          tc "node interning" test_netlist_nodes;
          tc "duplicate device rejected" test_netlist_duplicate_device;
          tc "compile counts" test_netlist_compile_counts;
          tc "dangling node rejected" test_netlist_dangling;
          tc "diagnostics collected in one report"
            test_netlist_diagnostics_collected;
          tc "non-finite DC level rejected" test_netlist_nonfinite_dc_source;
          tc "series insertion (open defect)" test_insert_series;
          tc "series insertion on missing device" test_insert_series_missing;
          tc "replace and remove" test_replace_remove;
          tc "terminal accessors" test_terminal_ops;
        ] );
    ]
