(* Unit and property tests for the numerics substrate. *)

module L = Dramstress_util.Linalg
module B = Dramstress_util.Bisect
module I = Dramstress_util.Interp
module G = Dramstress_util.Grid
module S = Dramstress_util.Stats
module U = Dramstress_util.Units

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1.0 +. Float.abs b)

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Linalg                                                              *)
(* ------------------------------------------------------------------ *)

let test_lu_identity () =
  let a = L.identity 5 in
  let b = [| 1.0; -2.0; 3.5; 0.0; 7.25 |] in
  let x = L.solve a b in
  Array.iteri (fun i v -> check_float "identity solve" b.(i) v) x

let test_lu_known_system () =
  (* 2x + y = 5 ; x + 3y = 10  ->  x = 1, y = 3 *)
  let a = [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = L.solve a [| 5.0; 10.0 |] in
  check_float "x" 1.0 x.(0);
  check_float "y" 3.0 x.(1)

let test_lu_pivoting () =
  (* zero leading pivot forces a row swap *)
  let a = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = L.solve a [| 2.0; 3.0 |] in
  check_float "x" 3.0 x.(0);
  check_float "y" 2.0 x.(1)

let test_lu_singular () =
  let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  match L.lu_factor a with
  | _ -> Alcotest.fail "expected Singular"
  | exception L.Singular { row; pivot } ->
    Alcotest.(check int) "row" 1 row;
    Alcotest.(check bool) "tiny pivot" true (Float.abs pivot < 1e-9)

let test_lu_rank_deficient_residue () =
  (* row 2 = row 0 + row 1: elimination leaves only cancellation residue
     in the last pivot. The old absolute-epsilon test let the residue
     through and divided by ~1e-16 — the unguarded-division bug; the
     relative threshold must reject it. *)
  let a =
    [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |]; [| 5.0; 7.0; 9.0 |] |]
  in
  (match L.lu_factor a with
  | _ -> Alcotest.fail "expected Singular on rank-2 matrix"
  | exception L.Singular { row; _ } -> Alcotest.(check int) "last row" 2 row);
  (* scaled copies must be caught identically: the threshold is relative *)
  let scaled = Array.map (Array.map (fun v -> v *. 1e9)) a in
  match L.lu_factor scaled with
  | _ -> Alcotest.fail "expected Singular on scaled rank-2 matrix"
  | exception L.Singular _ -> ()

let test_lu_near_singular_ok () =
  (* a gmin-conditioned system: pivots differ by 12 orders of magnitude
     but the matrix is genuinely invertible and must still solve *)
  let a = [| [| 1.0; 0.0 |]; [| 0.0; 1e-12 |] |] in
  let x = L.solve a [| 1.0; 2e-12 |] in
  check_float "x0" 1.0 x.(0);
  check_float "x1" 2.0 x.(1)

let test_lu_nan_pivot_rejected () =
  (* a NaN entry must surface as Singular, not as NaN solutions *)
  let a = [| [| Float.nan; 1.0 |]; [| 1.0; 1.0 |] |] in
  match L.solve a [| 1.0; 1.0 |] with
  | x ->
    if Array.exists (fun v -> not (Float.is_finite v)) x then
      Alcotest.fail "NaN leaked into the solution"
  | exception L.Singular _ -> ()

let test_lu_does_not_mutate () =
  let a = [| [| 4.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let saved = L.copy a in
  ignore (L.solve a [| 1.0; 2.0 |]);
  Array.iteri
    (fun i row ->
      Array.iteri (fun j v -> check_float "a unchanged" saved.(i).(j) v) row)
    a

let test_mat_vec_mul () =
  let a = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let v = L.mat_vec a [| 1.0; 1.0 |] in
  check_float "row0" 3.0 v.(0);
  check_float "row1" 7.0 v.(1);
  let c = L.mat_mul a (L.identity 2) in
  check_float "mat_mul id" 4.0 c.(1).(1)

let test_norms () =
  check_float "inf" 3.0 (L.norm_inf [| 1.0; -3.0; 2.0 |]);
  check_float "l2" 5.0 (L.norm_2 [| 3.0; 4.0 |]);
  check_float "inf empty" 0.0 (L.norm_inf [||])

let prop_lu_roundtrip =
  QCheck.Test.make ~count:100 ~name:"lu: A x = b residual is small"
    QCheck.(
      pair (int_range 1 8)
        (pair (list_of_size (Gen.return 64) (float_range (-10.0) 10.0))
           (list_of_size (Gen.return 8) (float_range (-10.0) 10.0))))
    (fun (n, (entries, rhs)) ->
      let ent = Array.of_list entries and rv = Array.of_list rhs in
      let a =
        Array.init n (fun i ->
            Array.init n (fun j ->
                let v = ent.((i * 8) + j) in
                if i = j then v +. 20.0 else v))
        (* diagonally dominant: never singular *)
      in
      let b = Array.init n (fun i -> rv.(i)) in
      let x = L.solve a b in
      L.norm_inf (L.residual a x b) < 1e-8)

(* ------------------------------------------------------------------ *)
(* Bisect                                                              *)
(* ------------------------------------------------------------------ *)

let test_root_linear () =
  let x = B.root (fun x -> x -. 1.5) 0.0 10.0 in
  check_float ~eps:1e-6 "root" 1.5 x

let test_root_cos () =
  let x = B.root cos 0.0 3.0 in
  check_float ~eps:1e-6 "pi/2" (Float.pi /. 2.0) x

let test_root_no_bracket () =
  Alcotest.check_raises "no bracket" B.No_bracket (fun () ->
      ignore (B.root (fun x -> (x *. x) +. 1.0) (-1.0) 1.0))

let test_threshold_updown () =
  (* predicate true below 2.0 *)
  let x = B.threshold (fun x -> x < 2.0) 0.0 10.0 in
  check_float ~eps:1e-6 "boundary" 2.0 x;
  (* predicate false below 2.0 *)
  let x = B.threshold (fun x -> x >= 2.0) 0.0 10.0 in
  check_float ~eps:1e-6 "boundary" 2.0 x

let test_threshold_log () =
  let x = B.threshold_log (fun r -> r < 2.0e5) 1e3 1e7 in
  if Float.abs (x -. 2.0e5) > 0.01 *. 2.0e5 then
    Alcotest.failf "log threshold: got %g" x

let test_guarded () =
  (match B.guarded_threshold (fun _ -> true) 0.0 1.0 with
  | B.All_true -> ()
  | B.All_false | B.Crossing _ -> Alcotest.fail "expected All_true");
  (match B.guarded_threshold (fun _ -> false) 0.0 1.0 with
  | B.All_false -> ()
  | B.All_true | B.Crossing _ -> Alcotest.fail "expected All_false");
  match B.guarded_threshold (fun x -> x < 0.5) 0.0 1.0 with
  | B.Crossing x -> check_float ~eps:1e-6 "crossing" 0.5 x
  | B.All_true | B.All_false -> Alcotest.fail "expected Crossing"

let prop_threshold_finds_boundary =
  QCheck.Test.make ~count:200 ~name:"threshold: recovers the cut point"
    QCheck.(float_range 0.1 9.9)
    (fun cut ->
      let x = B.threshold (fun v -> v < cut) 0.0 10.0 in
      Float.abs (x -. cut) < 1e-5)

(* ------------------------------------------------------------------ *)
(* Interp                                                              *)
(* ------------------------------------------------------------------ *)

let test_interp_eval () =
  let c = I.of_points [ (0.0, 0.0); (1.0, 2.0); (2.0, 0.0) ] in
  check_float "mid" 1.0 (I.eval c 0.5);
  check_float "peak" 2.0 (I.eval c 1.0);
  check_float "clamp lo" 0.0 (I.eval c (-5.0));
  check_float "clamp hi" 0.0 (I.eval c 7.0)

let test_interp_unsorted_input () =
  let c = I.of_points [ (2.0, 4.0); (0.0, 0.0); (1.0, 1.0) ] in
  check_float "sorted eval" 2.5 (I.eval c 1.5)

let test_interp_duplicate () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Interp.of_points: duplicate abscissa") (fun () ->
      ignore (I.of_points [ (0.0, 1.0); (0.0, 2.0) ]))

let test_interp_crossings () =
  let c = I.of_points [ (0.0, 0.0); (1.0, 2.0); (2.0, 0.0) ] in
  match I.crossings c 1.0 with
  | [ a; b ] ->
    check_float "first" 0.5 a;
    check_float "second" 1.5 b
  | other -> Alcotest.failf "expected 2 crossings, got %d" (List.length other)

let test_interp_no_crossing () =
  let c = I.of_points [ (0.0, 0.0); (1.0, 1.0) ] in
  Alcotest.(check (option (float 1e-9))) "none" None (I.first_crossing c 5.0)

let test_interp_intersections () =
  let a = I.of_points [ (0.0, 0.0); (10.0, 10.0) ] in
  let b = I.of_points [ (0.0, 10.0); (10.0, 0.0) ] in
  match I.intersections a b with
  | [ x ] -> check_float ~eps:1e-6 "cross at 5" 5.0 x
  | other -> Alcotest.failf "expected 1 intersection, got %d" (List.length other)

let test_interp_map_y () =
  let c = I.map_y (fun y -> 2.0 *. y) (I.of_points [ (0.0, 1.0); (1.0, 3.0) ]) in
  check_float "scaled" 4.0 (I.eval c 0.5)

(* ------------------------------------------------------------------ *)
(* Grid                                                                *)
(* ------------------------------------------------------------------ *)

let test_linspace () =
  (match G.linspace 0.0 1.0 5 with
  | [ a; b; c; d; e ] ->
    check_float "a" 0.0 a;
    check_float "b" 0.25 b;
    check_float "c" 0.5 c;
    check_float "d" 0.75 d;
    check_float "e" 1.0 e
  | _ -> Alcotest.fail "expected 5 points");
  Alcotest.(check (list (float 1e-12))) "single" [ 3.0 ] (G.linspace 3.0 9.0 1)

let test_logspace () =
  match G.logspace 1.0 100.0 3 with
  | [ a; b; c ] ->
    check_float "a" 1.0 a;
    check_float ~eps:1e-9 "b" 10.0 b;
    check_float ~eps:1e-9 "c" 100.0 c
  | _ -> Alcotest.fail "expected 3 points"

let test_arange () =
  Alcotest.(check (list (float 1e-12)))
    "arange" [ 0.0; 0.5; 1.0; 1.5 ] (G.arange 0.0 2.0 0.5)

let test_decades () =
  let pts = G.decades 1e3 1e6 4 in
  check_float "first" 1e3 (List.hd pts);
  check_float ~eps:1e-9 "last" 1e6 (List.nth pts (List.length pts - 1));
  Alcotest.(check bool) "enough points" true (List.length pts >= 12)

let prop_logspace_monotone =
  QCheck.Test.make ~count:100 ~name:"logspace is strictly increasing"
    QCheck.(pair (float_range 0.001 10.0) (int_range 2 50))
    (fun (lo, n) ->
      let pts = G.logspace lo (lo *. 1000.0) n in
      let rec mono = function
        | a :: (b :: _ as rest) -> a < b && mono rest
        | [ _ ] | [] -> true
      in
      mono pts && List.length pts = n)

(* ------------------------------------------------------------------ *)
(* Stats / Units                                                       *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (S.mean xs);
  check_float "var" 1.25 (S.variance xs);
  check_float "median" 2.5 (S.median xs);
  let lo, hi = S.min_max xs in
  check_float "min" 1.0 lo;
  check_float "max" 4.0 hi;
  check_float "q0" 1.0 (S.quantile 0.0 xs);
  check_float "q1" 4.0 (S.quantile 1.0 xs)

let test_stats_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty")
    (fun () -> ignore (S.mean [||]))

let test_units () =
  check_float "kilo" 2.0e5 (U.kilo 200.0);
  check_float "nano" 6.0e-8 (U.nano 60.0);
  check_float "c2k" 300.15 (U.celsius_to_kelvin 27.0);
  check_float "k2c" 27.0 (U.kelvin_to_celsius 300.15);
  check_float ~eps:1e-4 "vt at 300K" 0.02585 (U.thermal_voltage 300.0);
  Alcotest.(check string) "si 200k" "200 k" (U.si_string 2.0e5);
  Alcotest.(check string) "si 0" "0" (U.si_string 0.0)

(* ------------------------------------------------------------------ *)
(* Csvout / Ascii_plot                                                 *)
(* ------------------------------------------------------------------ *)

module Csv = Dramstress_util.Csvout
module Plot = Dramstress_util.Ascii_plot

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  scan 0

let test_csv_basic () =
  let out = Csv.to_string ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "3"; "4" ] ] in
  Alcotest.(check string) "csv" "a,b\n1,2\n3,4\n" out

let test_csv_quoting () =
  let out = Csv.to_string ~header:[ "x" ] [ [ "has,comma" ]; [ "has\"quote" ] ] in
  Alcotest.(check bool) "comma quoted" true (contains out "\"has,comma\"");
  Alcotest.(check bool) "quote doubled" true (contains out "\"has\"\"quote\"")

let test_csv_floats () =
  let out = Csv.of_floats ~header:[ "t"; "v" ] [ [ 1e-9; 2.4 ] ] in
  Alcotest.(check bool) "formatted" true (contains out "1e-09" && contains out "2.4")

let test_plot_renders_series () =
  let s = Plot.series "curve" [ (0.0, 0.0); (1.0, 1.0); (2.0, 4.0) ] in
  let out = Plot.render ~title:"parabola" [ s ] in
  Alcotest.(check bool) "title" true (contains out "parabola");
  Alcotest.(check bool) "legend" true (contains out "[c] curve");
  Alcotest.(check bool) "glyphs placed" true (contains out "c")

let test_plot_log_axis_and_hlines () =
  let s = Plot.series ~glyph:'#' "r" [ (1e3, 1.0); (1e6, 2.0) ] in
  let out =
    Plot.render ~x_axis:Plot.Log10 ~hlines:[ ("level", 1.5) ] ~title:"log"
      [ s ]
  in
  Alcotest.(check bool) "hline legend" true (contains out "level=1.5");
  Alcotest.(check bool) "dashes drawn" true (contains out "- -")

let test_plot_empty () =
  let out = Plot.render ~title:"none" [ Plot.series "x" [] ] in
  Alcotest.(check bool) "graceful" true (contains out "(no data)")

let test_plot_grid () =
  let out =
    Plot.render_grid ~title:"g" ~rows:("y", 2) ~cols:("x", 3)
      ~row_label:(fun r -> string_of_int r)
      ~col_label:(fun c -> string_of_int c)
      (fun r c -> if (r + c) mod 2 = 0 then '.' else 'X')
  in
  Alcotest.(check bool) "cells" true (contains out ". X .");
  Alcotest.(check bool) "axis names" true (contains out "rows: y")

(* ------------------------------------------------------------------ *)
(* In-place LU                                                         *)
(* ------------------------------------------------------------------ *)

let test_lu_in_place_matches_solve () =
  let a = [| [| 4.0; 1.0; 0.5 |]; [| 1.0; 3.0; -1.0 |]; [| 0.0; 2.0; 5.0 |] |] in
  let b = [| 1.0; -2.0; 4.0 |] in
  let expected = L.solve a b in
  let work = L.copy a in
  let perm = Array.make 3 0 in
  let scratch = Array.make 3 0.0 in
  let fact = L.lu_factor_in_place work ~perm in
  let x = Array.copy b in
  L.lu_solve_in_place fact ~scratch x;
  Array.iteri (fun i v -> check_float "in-place solve" expected.(i) v) x

let test_lu_in_place_pivoting () =
  let work = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let perm = Array.make 2 0 in
  let scratch = Array.make 2 0.0 in
  let fact = L.lu_factor_in_place work ~perm in
  let x = [| 2.0; 3.0 |] in
  L.lu_solve_in_place fact ~scratch x;
  check_float "x" 3.0 x.(0);
  check_float "y" 2.0 x.(1)

let test_lu_in_place_reuse () =
  (* the same perm/scratch buffers serve successive factorizations, as in
     the Newton iteration hot loop *)
  let perm = Array.make 2 0 in
  let scratch = Array.make 2 0.0 in
  List.iter
    (fun scale ->
      let work = [| [| 2.0 *. scale; 1.0 |]; [| 1.0; 3.0 |] |] in
      let reference = L.solve work [| 5.0; 10.0 |] in
      let x = [| 5.0; 10.0 |] in
      L.lu_solve_in_place (L.lu_factor_in_place work ~perm) ~scratch x;
      Array.iteri (fun i v -> check_float "reuse" reference.(i) v) x)
    [ 1.0; 2.0; 0.5 ]

(* ------------------------------------------------------------------ *)
(* Interp.of_sorted_arrays                                             *)
(* ------------------------------------------------------------------ *)

let test_interp_of_sorted_arrays () =
  let xs = [| 0.0; 1.0; 2.0 |] and ys = [| 0.0; 10.0; 0.0 |] in
  let c = I.of_sorted_arrays xs ys in
  check_float "midpoint" 5.0 (I.eval c 0.5);
  check_float "clamp left" 0.0 (I.eval c (-1.0));
  Alcotest.check_raises "unsorted rejected"
    (Invalid_argument "Interp.of_sorted_arrays: abscissae must strictly increase")
    (fun () -> ignore (I.of_sorted_arrays [| 1.0; 0.0 |] [| 0.0; 0.0 |]))

(* ------------------------------------------------------------------ *)
(* Lru                                                                 *)
(* ------------------------------------------------------------------ *)

module Lru = Dramstress_util.Lru

let test_lru_basic () =
  let c = Lru.create ~capacity:2 () in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Alcotest.(check (option int)) "a" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "b" (Some 2) (Lru.find c "b");
  Alcotest.(check int) "hits" 2 (Lru.hits c);
  Alcotest.(check (option int)) "miss" None (Lru.find c "z");
  Alcotest.(check int) "misses" 1 (Lru.misses c)

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:2 () in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  (* touch "a" so "b" is the least recently used *)
  ignore (Lru.find c "a");
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "a survives" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "c present" (Some 3) (Lru.find c "c");
  Alcotest.(check int) "bounded" 2 (Lru.length c)

let test_lru_replace_and_clear () =
  let c = Lru.create ~capacity:4 () in
  Lru.add c 1 "one";
  Lru.add c 1 "uno";
  Alcotest.(check (option string)) "replaced" (Some "uno") (Lru.find c 1);
  Alcotest.(check int) "no duplicate entry" 1 (Lru.length c);
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c);
  Alcotest.(check (option string)) "gone" None (Lru.find c 1)

(* ------------------------------------------------------------------ *)
(* Par                                                                 *)
(* ------------------------------------------------------------------ *)

module Par = Dramstress_util.Par

(* order-sensitive workload: result depends on the element AND its
   position, so any reordering or index mix-up in the runner shows up *)
let par_workload xs = List.mapi (fun i x -> (i, x * x, string_of_int x)) xs

let test_par_matches_list_map () =
  let xs = List.init 57 (fun i -> i - 7) in
  let expected = par_workload xs in
  let via_par =
    Par.parallel_map (fun x -> x)
      (List.mapi (fun i x -> (i, x * x, string_of_int x)) xs)
  in
  Alcotest.(check int) "length" (List.length expected) (List.length via_par);
  List.iter2
    (fun (i, a, s) (i', a', s') ->
      Alcotest.(check int) "index" i i';
      Alcotest.(check int) "value" a a';
      Alcotest.(check string) "string" s s')
    expected via_par;
  (* and through the parallel path proper, at several job counts *)
  List.iter
    (fun jobs ->
      let got =
        Par.parallel_map ~jobs (fun x -> (x, x * x, string_of_int x)) xs
      in
      let want = List.map (fun x -> (x, x * x, string_of_int x)) xs in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d preserves order" jobs)
        true (got = want))
    [ 1; 2; 4; 8 ]

let test_par_exception_propagates () =
  let boom = Failure "boom" in
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "exception at jobs=%d" jobs)
        boom
        (fun () ->
          ignore
            (Par.parallel_map ~jobs
               (fun x -> if x = 13 then raise boom else x)
               (List.init 20 Fun.id))))
    [ 1; 4 ]

let test_par_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Par.parallel_map ~jobs:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ]
    (Par.parallel_map ~jobs:4 succ [ 1 ])

let test_par_default_jobs () =
  Alcotest.(check bool) "at least one domain" true (Par.default_jobs () >= 1)

let test_par_chunks () =
  let check_split ~size xs =
    let cs = Par.chunks ~size xs in
    Alcotest.(check (list int))
      (Printf.sprintf "concat inverts at size %d" size)
      xs (List.concat cs);
    List.iteri
      (fun i c ->
        let len = List.length c in
        Alcotest.(check bool) "chunk non-empty" true (len > 0);
        Alcotest.(check bool) "chunk within size" true (len <= size);
        (* every chunk but the last is full *)
        if i < List.length cs - 1 then
          Alcotest.(check int) "interior chunk full" size len)
      cs
  in
  List.iter
    (fun size ->
      check_split ~size [];
      check_split ~size (List.init 1 Fun.id);
      check_split ~size (List.init 16 Fun.id);
      check_split ~size (List.init 17 Fun.id))
    [ 1; 3; 16; 100 ];
  Alcotest.check_raises "size 0 rejected"
    (Invalid_argument "Par.chunks: size < 1") (fun () ->
      ignore (Par.chunks ~size:0 [ 1 ]))

let test_resolve_lanes () =
  (* same precedence and degradation contract as resolve_jobs, on the
     DRAMSTRESS_LANES variable *)
  let with_env v f =
    let old = Sys.getenv_opt "DRAMSTRESS_LANES" in
    Unix.putenv "DRAMSTRESS_LANES" v;
    Fun.protect f ~finally:(fun () ->
        Unix.putenv "DRAMSTRESS_LANES" (Option.value old ~default:""))
  in
  with_env "5" (fun () ->
      Alcotest.(check int) "env wins over default" 5 (Par.resolve_lanes ());
      Alcotest.(check int) "explicit arg wins over env" 3
        (Par.resolve_lanes ~lanes:3 ());
      Alcotest.(check int) "arg clamped to >= 1" 1
        (Par.resolve_lanes ~lanes:0 ()));
  with_env "junk" (fun () ->
      Alcotest.(check int) "junk env falls back to the default"
        Par.default_lanes (Par.resolve_lanes ()));
  with_env "-2" (fun () ->
      Alcotest.(check int) "negative env falls back to the default"
        Par.default_lanes (Par.resolve_lanes ()));
  with_env "" (fun () ->
      Alcotest.(check int) "unset env takes the default" Par.default_lanes
        (Par.resolve_lanes ()))

let test_par_first_failure_wins () =
  (* at jobs = 1 the sequential path is deterministic: the FIRST failing
     item's exception is the one re-raised, later failures never run *)
  let exn_of i = Failure (Printf.sprintf "item %d" i) in
  Alcotest.check_raises "first failing item propagates" (exn_of 3) (fun () ->
      ignore
        (Par.parallel_map ~jobs:1
           (fun i -> if i >= 3 then raise (exn_of i) else i)
           (List.init 10 Fun.id)))

let test_par_abandons_after_failure () =
  (* sequential path: items after the failing one are never started *)
  let processed = Atomic.make 0 in
  (try
     ignore
       (Par.parallel_map ~jobs:1
          (fun i ->
            Atomic.incr processed;
            if i = 4 then failwith "stop here";
            i)
          (List.init 20 Fun.id))
   with Failure _ -> ());
  Alcotest.(check int) "items after the failure skipped" 5
    (Atomic.get processed);
  (* parallel path: a failure must not hang the sweep, and at least the
     failing item ran; unstarted tail items may be skipped *)
  let processed = Atomic.make 0 in
  (try
     ignore
       (Par.parallel_map ~jobs:4
          (fun i ->
            Atomic.incr processed;
            if i = 4 then failwith "stop here";
            i)
          (List.init 64 Fun.id))
   with Failure _ -> ());
  let n = Atomic.get processed in
  Alcotest.(check bool)
    (Printf.sprintf "parallel run drained without hanging (%d processed)" n)
    true
    (n >= 1 && n <= 64)

let test_par_backtrace_preserved () =
  (* satellite: worker backtraces survive the cross-domain re-raise.
     Only meaningful when the runtime records backtraces at all. *)
  let was = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect
    ~finally:(fun () -> Printexc.record_backtrace was)
    (fun () ->
      let deep_failure x =
        (* a few frames so the captured trace is non-trivial *)
        let g y = if y > 2 then failwith "deep" else y in
        g (x + 10)
      in
      List.iter
        (fun jobs ->
          match
            Par.parallel_map ~jobs deep_failure (List.init 8 Fun.id)
          with
          | _ -> Alcotest.fail "expected the worker exception"
          | exception Failure _ ->
            let bt = Printexc.get_raw_backtrace () in
            Alcotest.(check bool)
              (Printf.sprintf "non-empty backtrace at jobs=%d" jobs)
              true
              (Printexc.raw_backtrace_length bt > 0))
        [ 1; 4 ])

module Outcome = Dramstress_util.Outcome

let test_par_outcomes_mixed () =
  let xs = List.init 30 Fun.id in
  let f x = if x mod 7 = 3 then failwith (string_of_int x) else x * x in
  List.iter
    (fun jobs ->
      let outs = Par.parallel_map_outcomes ~jobs f xs in
      Alcotest.(check int) "one outcome per item" (List.length xs)
        (List.length outs);
      (* positional: slot i corresponds to input i *)
      List.iteri
        (fun i out ->
          match out with
          | Outcome.Ok v ->
            Alcotest.(check bool) "ok slot" true (i mod 7 <> 3);
            Alcotest.(check int) "payload" (i * i) v
          | Outcome.Failed { point; error; retries } ->
            Alcotest.(check bool) "failed slot" true (i mod 7 = 3);
            Alcotest.(check int) "point is the input" i point;
            Alcotest.(check int) "default retries" 0 retries;
            Alcotest.(check string) "error kept"
              (string_of_int i)
              (match error with Failure m -> m | _ -> "?"))
        outs;
      let oks, fails = Outcome.partition outs in
      Alcotest.(check int) "ok count" 26 (List.length oks);
      Alcotest.(check int) "failure count" 4 (List.length fails);
      Alcotest.(check (list int)) "failures in input order" [ 3; 10; 17; 24 ]
        (List.map (fun f -> f.Outcome.point) fails))
    [ 1; 4 ]

let test_par_outcomes_retries_hook () =
  let outs =
    Par.parallel_map_outcomes ~jobs:1
      ~retries_of:(function Failure m -> int_of_string m | _ -> 0)
      (fun x -> if x = 2 then failwith "5" else x)
      [ 0; 1; 2; 3 ]
  in
  match outs with
  | [ Ok 0; Ok 1; Failed f; Ok 3 ] ->
    Alcotest.(check int) "retries extracted from the exception" 5
      f.Outcome.retries
  | _ -> Alcotest.fail "unexpected outcome shape"

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                          *)
(* ------------------------------------------------------------------ *)

module Ck = Dramstress_util.Checkpoint

let with_ck_file f =
  let path = Filename.temp_file "dramstress_ck" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_ck_record_find_roundtrip () =
  with_ck_file @@ fun path ->
  let t = Ck.open_ path in
  let key = Ck.digest_key "point A" in
  Alcotest.(check (option string)) "miss before record" None (Ck.find t key);
  Ck.record t ~key ~descr:"point A" "payload-a";
  Ck.record t ~key:(Ck.digest_key "point B") "payload-b";
  Alcotest.(check (option string)) "hit" (Some "payload-a") (Ck.find t key);
  Alcotest.(check int) "two entries" 2 (Ck.entries t);
  (* duplicate keys: first record wins *)
  Ck.record t ~key "payload-a2";
  Alcotest.(check (option string))
    "first record wins" (Some "payload-a") (Ck.find t key);
  Ck.close t

let test_ck_fresh_open_truncates () =
  with_ck_file @@ fun path ->
  let t = Ck.open_ path in
  Ck.record t ~key:(Ck.digest_key "k") "v";
  Ck.close t;
  let t = Ck.open_ path in
  (* resume = false: a fresh campaign, prior records gone *)
  Alcotest.(check int) "truncated" 0 (Ck.entries t);
  Alcotest.(check (option string))
    "old record unavailable" None
    (Ck.find t (Ck.digest_key "k"));
  Ck.close t

let test_ck_resume_loads () =
  with_ck_file @@ fun path ->
  let t = Ck.open_ path in
  let k1 = Ck.digest_key "p1" and k2 = Ck.digest_key "p2" in
  Ck.record t ~key:k1 ~descr:"p1" "0x1.8p+1";
  Ck.record t ~key:k2 "second";
  Ck.close t;
  let t = Ck.open_ ~resume:true path in
  Alcotest.(check int) "both loaded" 2 (Ck.entries t);
  Alcotest.(check (option string)) "k1" (Some "0x1.8p+1") (Ck.find t k1);
  Alcotest.(check (option string)) "k2" (Some "second") (Ck.find t k2);
  (* appends land behind the replayed records *)
  let k3 = Ck.digest_key "p3" in
  Ck.record t ~key:k3 "third";
  Ck.close t;
  let t = Ck.open_ ~resume:true path in
  Alcotest.(check int) "append survived" 3 (Ck.entries t);
  Ck.close t

let test_ck_truncated_final_line () =
  with_ck_file @@ fun path ->
  let t = Ck.open_ path in
  let k1 = Ck.digest_key "whole" in
  Ck.record t ~key:k1 "intact";
  Ck.close t;
  (* simulate a kill mid-write: append half a record, no newline *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"key\":\"deadbeef\",\"va";
  close_out oc;
  let t = Ck.open_ ~resume:true path in
  Alcotest.(check int) "only the intact record" 1 (Ck.entries t);
  Alcotest.(check (option string)) "intact survives" (Some "intact")
    (Ck.find t k1);
  Ck.close t

let test_ck_memo () =
  with_ck_file @@ fun path ->
  let calls = ref 0 in
  let compute () =
    incr calls;
    3.25
  in
  let enc = Printf.sprintf "%h" in
  let dec s = float_of_string_opt s in
  (* no store: always computes *)
  let v = Ck.memo None ~key:"k" ~encode:enc ~decode:dec compute in
  Alcotest.(check (float 0.0)) "passthrough" 3.25 v;
  Alcotest.(check int) "computed" 1 !calls;
  let t = Ck.open_ path in
  let v = Ck.memo (Some t) ~key:"k" ~encode:enc ~decode:dec compute in
  Alcotest.(check (float 0.0)) "miss computes" 3.25 v;
  Alcotest.(check int) "computed again" 2 !calls;
  let v = Ck.memo (Some t) ~key:"k" ~encode:enc ~decode:dec compute in
  Alcotest.(check (float 0.0)) "hit" 3.25 v;
  Alcotest.(check int) "served from store" 2 !calls;
  Ck.close t;
  (* and across a resume *)
  let t = Ck.open_ ~resume:true path in
  let v = Ck.memo (Some t) ~key:"k" ~encode:enc ~decode:dec compute in
  Alcotest.(check (float 0.0)) "hit after resume" 3.25 v;
  Alcotest.(check int) "no recomputation" 2 !calls;
  (* decode refusing the payload falls back to recomputation *)
  let v =
    Ck.memo (Some t) ~key:"k" ~encode:enc
      ~decode:(fun _ -> None)
      compute
  in
  Alcotest.(check (float 0.0)) "fallback value" 3.25 v;
  Alcotest.(check int) "recomputed on decode failure" 3 !calls;
  Ck.close t

let test_ck_fingerprint_stable () =
  let a = Ck.fingerprint ("plane", 1.5, [ 1; 2; 3 ]) in
  let b = Ck.fingerprint ("plane", 1.5, [ 1; 2; 3 ]) in
  let c = Ck.fingerprint ("plane", 1.5, [ 1; 2; 4 ]) in
  Alcotest.(check string) "deterministic" a b;
  Alcotest.(check bool) "sensitive to the value" true (a <> c)

let test_ck_truncate_every_byte () =
  (* property: a checkpoint file cut at ANY byte offset either loads a
     strict prefix of the records or fails cleanly — never a crash,
     never a corrupt record served as valid *)
  with_ck_file @@ fun path ->
  let t = Ck.open_ path in
  let keys =
    List.init 5 (fun i -> Ck.digest_key (Printf.sprintf "point-%d" i))
  in
  List.iteri
    (fun i k ->
      Ck.record t ~key:k ~descr:(Printf.sprintf "descr %d" i)
        (Printf.sprintf "%h" (float_of_int i *. 1.25)))
    keys;
  Ck.close t;
  let whole = In_channel.with_open_bin path In_channel.input_all in
  let total = String.length whole in
  let tmp = Filename.temp_file "dramstress_ck_cut" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      for cut = 0 to total do
        Out_channel.with_open_bin tmp (fun oc ->
            Out_channel.output_string oc (String.sub whole 0 cut));
        match Ck.open_ ~resume:true tmp with
        | t ->
          let n = Ck.entries t in
          if n > 5 then
            Alcotest.failf "cut at %d invented records (%d)" cut n;
          (* every surviving record must be one of the true payloads *)
          List.iteri
            (fun i k ->
              match Ck.find t k with
              | None -> ()
              | Some v ->
                Alcotest.(check string)
                  (Printf.sprintf "cut %d, record %d intact" cut i)
                  (Printf.sprintf "%h" (float_of_int i *. 1.25))
                  v)
            keys;
          Ck.close t
        | exception exn ->
          Alcotest.failf "cut at %d: load crashed with %s" cut
            (Printexc.to_string exn)
      done;
      (* the untruncated file loads everything *)
      let t = Ck.open_ ~resume:true tmp in
      Alcotest.(check int) "full file loads all" 5 (Ck.entries t);
      Ck.close t)

(* ------------------------------------------------------------------ *)
(* Chaos                                                               *)
(* ------------------------------------------------------------------ *)

module Chaos = Dramstress_util.Chaos

let with_chaos f =
  Fun.protect ~finally:(fun () -> Chaos.disarm ()) f

let test_chaos_dormant_by_default () =
  Chaos.disarm ();
  Alcotest.(check bool) "dormant" false (Chaos.armed ());
  Alcotest.(check bool) "fire is false" false (Chaos.fire Chaos.Inject_nan_state);
  Alcotest.(check int) "nothing injected" 0 (Chaos.total_injected ())

let test_chaos_spec_parsing () =
  with_chaos @@ fun () ->
  Chaos.configure ~seed:7 "inject_nan_state@50,fail_worker_task@+3";
  Alcotest.(check bool) "armed" true (Chaos.armed ());
  Alcotest.(check int) "seed" 7 (Chaos.seed ());
  Alcotest.check_raises "unknown fault"
    (Invalid_argument "Chaos: unknown fault class \"bogus\"") (fun () ->
      Chaos.configure ~seed:1 "bogus");
  Alcotest.check_raises "bad period"
    (Invalid_argument "Chaos: bad fault period \"0\" in \"inject_nan_state@0\"")
    (fun () -> Chaos.configure ~seed:1 "inject_nan_state@0");
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Chaos.fault_name f) true
        (Chaos.fault_of_name (Chaos.fault_name f) = Some f))
    Chaos.all_faults

let test_chaos_every_determinism () =
  with_chaos @@ fun () ->
  let pattern () =
    Chaos.configure ~seed:42 "inject_nan_state@5";
    List.init 20 (fun _ -> Chaos.fire Chaos.Inject_nan_state)
  in
  let a = pattern () and b = pattern () in
  Alcotest.(check (list bool)) "seed-deterministic" a b;
  Alcotest.(check int) "4 windows of 5 in 20 queries" 4
    (List.length (List.filter Fun.id a));
  (* a different seed shifts which query in the window fires *)
  Chaos.configure ~seed:43 "inject_nan_state@5";
  let c = List.init 20 (fun _ -> Chaos.fire Chaos.Inject_nan_state) in
  Alcotest.(check int) "same count under any seed" 4
    (List.length (List.filter Fun.id c));
  Alcotest.(check bool) "different phase" true (a <> c);
  (* unconfigured faults never fire while others do *)
  Alcotest.(check bool) "other fault silent" false
    (Chaos.fire Chaos.Perturb_jacobian)

let test_chaos_once_mode () =
  with_chaos @@ fun () ->
  Chaos.configure ~seed:9 "force_newton_diverge@+3";
  let fires = List.init 10 (fun _ -> Chaos.fire Chaos.Force_newton_diverge) in
  Alcotest.(check (list bool)) "exactly the 3rd query"
    [ false; false; true; false; false; false; false; false; false; false ]
    fires;
  Alcotest.(check int) "counted once" 1 (Chaos.injected Chaos.Force_newton_diverge);
  Alcotest.(check int) "total matches" 1 (Chaos.total_injected ())

let test_chaos_injection_accounting () =
  with_chaos @@ fun () ->
  Chaos.configure ~seed:1 "inject_nan_state@2,perturb_jacobian@4";
  for _ = 1 to 8 do
    ignore (Chaos.fire Chaos.Inject_nan_state);
    ignore (Chaos.fire Chaos.Perturb_jacobian)
  done;
  Alcotest.(check int) "nan: 4 of 8" 4 (Chaos.injected Chaos.Inject_nan_state);
  Alcotest.(check int) "jacobian: 2 of 8" 2
    (Chaos.injected Chaos.Perturb_jacobian);
  Alcotest.(check int) "total = sum of classes"
    (List.fold_left (fun acc f -> acc + Chaos.injected f) 0 Chaos.all_faults)
    (Chaos.total_injected ());
  Chaos.reset_counts ();
  Alcotest.(check int) "reset" 0 (Chaos.total_injected ())

let test_chaos_env_parsing () =
  with_chaos @@ fun () ->
  Unix.putenv "DRAMSTRESS_CHAOS" "42:inject_nan_state@50";
  Chaos.configure_from_env ();
  Alcotest.(check bool) "armed from env" true (Chaos.armed ());
  Alcotest.(check int) "seed from env" 42 (Chaos.seed ());
  Unix.putenv "DRAMSTRESS_CHAOS" "off";
  Chaos.configure_from_env ();
  Alcotest.(check bool) "off disarms" false (Chaos.armed ());
  Unix.putenv "DRAMSTRESS_CHAOS" "";
  Chaos.configure_from_env ();
  Alcotest.(check bool) "empty stays dormant" false (Chaos.armed ())

let test_chaos_truncated_record_resume () =
  with_chaos @@ fun () ->
  (* the Checkpoint injection site: every second record is cut in half
     mid-write, as if the process were killed during the append. The
     running campaign is unaffected (the in-memory table holds the
     value); a resume must load the intact records and skip the
     mangled ones cleanly. *)
  with_ck_file @@ fun path ->
  Chaos.configure ~seed:1 "truncate_checkpoint@2";
  let t = Ck.open_ path in
  let keys = List.init 6 (fun i -> Ck.digest_key (Printf.sprintf "p%d" i)) in
  List.iteri
    (fun i k -> Ck.record t ~key:k (Printf.sprintf "payload-%d" i))
    keys;
  (* current run still sees everything *)
  List.iteri
    (fun i k ->
      Alcotest.(check (option string))
        (Printf.sprintf "in-memory p%d" i)
        (Some (Printf.sprintf "payload-%d" i))
        (Ck.find t k))
    keys;
  Ck.close t;
  let n_injected = Chaos.injected Chaos.Truncate_checkpoint in
  Alcotest.(check int) "3 of 6 records truncated" 3 n_injected;
  Chaos.disarm ();
  (* a truncated record has no newline, so the next append glues onto
     it and both parse as one malformed line: the resume must keep the
     clean prefix, skip the mangled bytes and never serve a corrupt
     payload *)
  let t = Ck.open_ ~resume:true path in
  List.iteri
    (fun i k ->
      match Ck.find t k with
      | None -> ()
      | Some v ->
        Alcotest.(check string)
          (Printf.sprintf "resumed p%d uncorrupted" i)
          (Printf.sprintf "payload-%d" i)
          v)
    keys;
  Alcotest.(check (option string)) "clean head record survives"
    (Some "payload-0")
    (Ck.find t (List.hd keys));
  Ck.close t

let test_chaos_worker_fault_outcomes () =
  with_chaos @@ fun () ->
  (* the Par injection site: armed Fail_worker_task turns slots into
     structured Failed outcomes without aborting the campaign *)
  Chaos.configure ~seed:0 "fail_worker_task@4";
  let module Par = Dramstress_util.Par in
  let module Outcome = Dramstress_util.Outcome in
  let outs =
    Par.parallel_map_outcomes ~jobs:1 (fun x -> x * 10) (List.init 8 Fun.id)
  in
  Alcotest.(check int) "all slots kept" 8 (List.length outs);
  let failed =
    List.filter
      (function
        | Outcome.Failed { error = Chaos.Injected_fault _; _ } -> true
        | Outcome.Failed _ | Outcome.Ok _ -> false)
      outs
  in
  Alcotest.(check int) "2 of 8 injected" 2 (List.length failed);
  Alcotest.(check int) "accounting agrees" 2
    (Chaos.injected Chaos.Fail_worker_task);
  (* disarmed: same call is clean *)
  Chaos.disarm ();
  let outs = Par.parallel_map_outcomes ~jobs:1 (fun x -> x) [ 1; 2; 3 ] in
  Alcotest.(check bool) "no failures when dormant" true
    (List.for_all (function Outcome.Ok _ -> true | _ -> false) outs)

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

module St = Dramstress_util.Store

let with_store_dir f =
  let dir = Filename.temp_file "dramstress_store" "" in
  Sys.remove dir;
  let rec rm p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  Fun.protect
    ~finally:(fun () -> try rm dir with Sys_error _ -> ())
    (fun () -> f dir)

let test_store_roundtrip () =
  with_store_dir @@ fun dir ->
  let s = St.open_ ~engine:"engine-A" ~name:"rt" dir in
  Alcotest.(check (option string)) "miss" None (St.find s ~key:"alpha");
  St.put s ~key:"alpha" ~descr:"alpha point" "0x1.9p+3";
  Alcotest.(check (option string))
    "hit" (Some "0x1.9p+3") (St.find s ~key:"alpha");
  (* success records are first-wins: a replayed point never clobbers *)
  St.put s ~key:"alpha" "other";
  Alcotest.(check (option string))
    "first wins" (Some "0x1.9p+3") (St.find s ~key:"alpha");
  (* failure markers are last-wins *)
  St.put s ~key:"marker" ~overwrite:true "attempt 1";
  St.put s ~key:"marker" ~overwrite:true "attempt 2";
  Alcotest.(check (option string))
    "overwrite: last wins" (Some "attempt 2")
    (St.find s ~key:"marker");
  St.close s;
  (* records outlive the process: a fresh handle sees everything *)
  let s = St.open_ ~engine:"engine-B" ~name:"rt" dir in
  Alcotest.(check (option string))
    "persisted" (Some "0x1.9p+3") (St.find s ~key:"alpha");
  Alcotest.(check (option string))
    "last overwrite persisted" (Some "attempt 2")
    (St.find s ~key:"marker");
  St.close s

let test_store_index_and_engines () =
  with_store_dir @@ fun dir ->
  Alcotest.(check bool) "no index before first close" true
    (St.index dir = None);
  let s = St.open_ ~engine:"engine-A" ~name:"idx" dir in
  St.put s ~key:"k1" "v1";
  St.put s ~key:"k2" "v2";
  St.close s;
  (match St.index dir with
  | None -> Alcotest.fail "index.json missing after close"
  | Some ix ->
    Alcotest.(check string) "name" "idx" ix.St.ix_name;
    Alcotest.(check string) "engine" "engine-A" ix.St.ix_engine;
    Alcotest.(check int) "records" 2 ix.St.ix_records);
  (* a second build appends under its own identity; the staleness
     report tallies both *)
  let s = St.open_ ~engine:"engine-B" ~name:"idx" dir in
  St.put s ~key:"k3" "v3";
  Alcotest.(check (list (pair string int)))
    "engines, most frequent first"
    [ ("engine-A", 2); ("engine-B", 1) ]
    (St.engines s);
  St.close s

let test_store_truncated_tail () =
  with_store_dir @@ fun dir ->
  let s = St.open_ ~engine:"e" ~name:"t" dir in
  St.put s ~key:"whole" "intact";
  St.close s;
  (* simulate a kill mid-write on the shared records file *)
  let oc =
    open_out_gen [ Open_append ] 0o644 (Filename.concat dir "records.jsonl")
  in
  output_string oc "{\"engine\":\"e\",\"key\":\"dead";
  close_out oc;
  let s = St.open_ ~engine:"e" ~name:"t" dir in
  Alcotest.(check int) "only the intact record" 1 (St.entries s);
  Alcotest.(check (option string))
    "intact record served" (Some "intact")
    (St.find s ~key:"whole");
  St.close s

let test_store_memo () =
  with_store_dir @@ fun dir ->
  let calls = ref 0 in
  let compute () =
    incr calls;
    6.5
  in
  let enc = Printf.sprintf "%h" in
  let dec = float_of_string_opt in
  let s = St.open_ ~engine:"e" ~name:"m" dir in
  let v = St.memo s ~key:"point" ~encode:enc ~decode:dec compute in
  Alcotest.(check (float 0.0)) "miss computes" 6.5 v;
  let v = St.memo s ~key:"point" ~encode:enc ~decode:dec compute in
  Alcotest.(check (float 0.0)) "hit" 6.5 v;
  Alcotest.(check int) "computed once" 1 !calls;
  St.close s;
  let s = St.open_ ~engine:"e" ~name:"m" dir in
  let v = St.memo s ~key:"point" ~encode:enc ~decode:dec compute in
  Alcotest.(check (float 0.0)) "hit across reopen" 6.5 v;
  Alcotest.(check int) "still computed once" 1 !calls;
  St.close s

(* fingerprints are content addresses: distinct values must never
   collide, equal values must agree across domains and re-serialization *)

let has_nan (a, b, c) =
  Float.is_nan a || Float.is_nan b || Float.is_nan c

let prop_fingerprint_injective =
  QCheck.Test.make ~count:200
    ~name:"distinct values -> distinct fingerprints"
    QCheck.(
      pair
        (triple float float float)
        (triple float float float))
    (fun (a, b) ->
      QCheck.assume (not (has_nan a) && not (has_nan b));
      if a = b then Ck.fingerprint a = Ck.fingerprint b
      else Ck.fingerprint a <> Ck.fingerprint b)

let prop_fingerprint_stable_reserialized =
  (* the fingerprint keys durable stores, so it must survive a
     round-trip through the record file byte-exactly *)
  QCheck.Test.make ~count:50
    ~name:"fingerprint round-trips through a store"
    QCheck.(triple float float float)
    (fun v ->
      QCheck.assume (not (has_nan v));
      let fp = Ck.fingerprint v in
      with_store_dir @@ fun dir ->
      let s = St.open_ ~engine:"e" ~name:"fp" dir in
      St.put s ~key:fp "seen";
      St.close s;
      let s = St.open_ ~engine:"e" ~name:"fp" dir in
      let hit = St.find s ~key:(Ck.fingerprint v) = Some "seen" in
      St.close s;
      hit)

let test_fingerprint_domain_stable () =
  let v = ("stress", 2.4, 60e-9, [ 1; 2; 3 ]) in
  let expected = Ck.fingerprint v in
  let fps =
    List.init 4 (fun _ -> Domain.spawn (fun () -> Ck.fingerprint v))
    |> List.map Domain.join
  in
  List.iter
    (Alcotest.(check string) "same fingerprint in every domain" expected)
    fps

(* ------------------------------------------------------------------ *)
(* Par: env junk degrades with one warning                             *)
(* ------------------------------------------------------------------ *)

module Tel = Dramstress_util.Telemetry

let with_tel f =
  Tel.set_enabled true;
  Fun.protect ~finally:(fun () -> Tel.set_enabled false) f

let test_par_env_warning_logged_once () =
  let with_env var v f =
    let old = Sys.getenv_opt var in
    Unix.putenv var v;
    Par.reset_env_warnings ();
    Fun.protect f ~finally:(fun () ->
        Unix.putenv var (Option.value old ~default:"");
        Par.reset_env_warnings ())
  in
  (* zero, negative and non-numeric env values all degrade to the
     default — never to a crash, never to 0 domains — and each variable
     warns exactly once no matter how often it is resolved *)
  with_env "DRAMSTRESS_LANES" "0" (fun () ->
      Alcotest.(check int) "zero falls back" Par.default_lanes
        (Par.resolve_lanes ());
      Alcotest.(check (list (pair string string)))
        "rejected value logged"
        [ ("DRAMSTRESS_LANES", "0") ]
        (Par.env_warnings ());
      ignore (Par.resolve_lanes ());
      ignore (Par.resolve_lanes ());
      Alcotest.(check int) "warned once, not per resolve" 1
        (List.length (Par.env_warnings ())));
  with_env "DRAMSTRESS_LANES" "-2" (fun () ->
      Alcotest.(check int) "negative falls back" Par.default_lanes
        (Par.resolve_lanes ());
      Alcotest.(check (list (pair string string)))
        "negative logged"
        [ ("DRAMSTRESS_LANES", "-2") ]
        (Par.env_warnings ()));
  with_env "DRAMSTRESS_JOBS" "banana" (fun () ->
      Alcotest.(check bool) "garbage resolves to >= 1" true
        (Par.resolve_jobs () >= 1);
      Alcotest.(check (list (pair string string)))
        "garbage logged"
        [ ("DRAMSTRESS_JOBS", "banana") ]
        (Par.env_warnings ()));
  (* unset (empty) is the documented "not set" spelling: silent *)
  with_env "DRAMSTRESS_LANES" "" (fun () ->
      Alcotest.(check int) "empty takes the default" Par.default_lanes
        (Par.resolve_lanes ());
      Alcotest.(check (list (pair string string)))
        "empty is not junk" [] (Par.env_warnings ()))

(* ------------------------------------------------------------------ *)
(* Checkpoint: sick lines mid-file                                     *)
(* ------------------------------------------------------------------ *)

let file_lines path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let rec go acc =
    match input_line ic with
    | l -> go (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let write_file_lines path lines =
  let oc = open_out path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc

let test_ck_bad_middle_line_tail_replays () =
  with_ck_file @@ fun path ->
  let t = Ck.open_ path in
  List.iter
    (fun k -> Ck.record t ~key:(Ck.digest_key k) ("payload-" ^ k))
    [ "k1"; "k2"; "k3" ];
  Ck.close t;
  (* mangle the middle line in place, keeping its newline: the records
     behind it must still replay *)
  (match file_lines path with
  | [ l1; l2; l3 ] ->
    let chopped = String.sub l2 0 (String.length l2 - 10) in
    write_file_lines path [ l1; chopped; l3 ]
  | ls -> Alcotest.failf "expected 3 lines, found %d" (List.length ls));
  let t = Ck.open_ ~resume:true path in
  Alcotest.(check int) "tail replayed past the sick line" 2 (Ck.entries t);
  Alcotest.(check (option string))
    "head intact" (Some "payload-k1")
    (Ck.find t (Ck.digest_key "k1"));
  Alcotest.(check (option string))
    "tail intact" (Some "payload-k3")
    (Ck.find t (Ck.digest_key "k3"));
  Alcotest.(check (option string))
    "sick record lost, not resurrected" None
    (Ck.find t (Ck.digest_key "k2"));
  (* the lost point is simply recomputed and the file heals *)
  Ck.record t ~key:(Ck.digest_key "k2") "payload-k2";
  Ck.close t;
  let t = Ck.open_ ~resume:true path in
  Alcotest.(check (option string))
    "recomputed record persisted" (Some "payload-k2")
    (Ck.find t (Ck.digest_key "k2"));
  Ck.close t

let test_ck_corrupt_payload_repaired () =
  with_tel @@ fun () ->
  with_ck_file @@ fun path ->
  let calls = ref 0 in
  let compute v () =
    incr calls;
    v
  in
  let memo t k v =
    Ck.memo (Some t) ~key:k ~encode:string_of_int
      ~decode:int_of_string_opt (compute v)
  in
  let t = Ck.open_ path in
  ignore (memo t "k1" 1);
  ignore (memo t "k2" 2);
  ignore (memo t "k3" 3);
  Ck.close t;
  Alcotest.(check int) "three cold computes" 3 !calls;
  (* replace the middle record's payload with a well-formed line the
     decoder refuses: a mid-file corruption, not a truncated tail *)
  (match file_lines path with
  | [ l1; _; l3 ] ->
    let bad =
      Printf.sprintf {|{"key":"%s","value":"not-an-int"}|}
        (Ck.digest_key "k2")
    in
    write_file_lines path [ l1; bad; l3 ]
  | ls -> Alcotest.failf "expected 3 lines, found %d" (List.length ls));
  let t = Ck.open_ ~resume:true path in
  let skipped_before = Tel.Counter.value (Tel.Counter.make "util.checkpoint.skipped_records") in
  calls := 0;
  Alcotest.(check int) "clean head is a hit" 1 (memo t "k1" 1);
  Alcotest.(check int) "clean tail replayed" 3 (memo t "k3" 3);
  Alcotest.(check int) "no recompute for clean records" 0 !calls;
  Alcotest.(check int) "refused payload recomputed" 2 (memo t "k2" 2);
  Alcotest.(check int) "one recompute" 1 !calls;
  Alcotest.(check int) "skip counted" (skipped_before + 1)
    (Tel.Counter.value (Tel.Counter.make "util.checkpoint.skipped_records"));
  Alcotest.(check int) "repair served from memory" 2 (memo t "k2" 2);
  Alcotest.(check int) "still one recompute" 1 !calls;
  Ck.close t;
  (* the repair was appended (last record wins), so a fresh resume
     serves it without recomputation *)
  let t = Ck.open_ ~resume:true path in
  calls := 0;
  Alcotest.(check int) "repair persisted" 2 (memo t "k2" 2);
  Alcotest.(check int) "no recompute after repair" 0 !calls;
  Ck.close t

(* ------------------------------------------------------------------ *)
(* Store: sharding, inter-process appends, recovery, merge             *)
(* ------------------------------------------------------------------ *)

let test_store_sharded_roundtrip () =
  with_store_dir @@ fun dir ->
  let keys = List.init 20 (Printf.sprintf "point-%d") in
  let s = St.open_ ~engine:"e" ~shards:4 ~name:"sh" dir in
  Alcotest.(check int) "pinned shard count" 4 (St.shards s);
  List.iter (fun k -> St.put s ~key:k ~descr:k ("v:" ^ k)) keys;
  List.iter
    (fun k ->
      Alcotest.(check (option string)) "hit" (Some ("v:" ^ k))
        (St.find s ~key:k))
    keys;
  Alcotest.(check int) "entries across shards" 20 (St.entries s);
  (* a sharded store has no single checkpoint; routing is per key *)
  Alcotest.(check bool) "checkpoint refused" true
    (match St.checkpoint s with
    | exception Invalid_argument _ -> true
    | _ -> false);
  List.iter
    (fun k ->
      let ck = St.checkpoint_for s ~key:k in
      Alcotest.(check (option string)) "routed shard holds the record"
        (Some ("v:" ^ k))
        (Ck.find ck (Ck.digest_key k)))
    keys;
  St.close s;
  (match St.index dir with
  | None -> Alcotest.fail "top index missing after close"
  | Some ix ->
    Alcotest.(check int) "index shards" 4 ix.St.ix_shards;
    Alcotest.(check int) "index records" 20 ix.St.ix_records);
  (* reopen with no explicit count: the on-disk layout wins *)
  let s = St.open_ ~engine:"e" ~name:"sh" dir in
  Alcotest.(check int) "layout autodetected" 4 (St.shards s);
  List.iter
    (fun k ->
      Alcotest.(check (option string)) "persisted" (Some ("v:" ^ k))
        (St.find s ~key:k))
    keys;
  St.close s;
  (* the matching explicit count is fine; any other count is refused *)
  let s = St.open_ ~engine:"e" ~shards:4 ~name:"sh" dir in
  St.close s;
  Alcotest.(check bool) "mismatched count refused" true
    (match St.open_ ~engine:"e" ~shards:8 ~name:"sh" dir with
    | exception Invalid_argument _ -> true
    | s ->
      St.close s;
      false)

let test_store_layout_conflict_refused () =
  with_store_dir @@ fun dir ->
  let s = St.open_ ~engine:"e" ~name:"single" dir in
  St.put s ~key:"k" "v";
  St.close s;
  Alcotest.(check bool) "shards on an existing single-file store" true
    (match St.open_ ~engine:"e" ~shards:4 ~name:"single" dir with
    | exception Invalid_argument _ -> true
    | s ->
      St.close s;
      false)

let test_store_orphan_tmp_cleanup () =
  with_tel @@ fun () ->
  with_store_dir @@ fun dir ->
  let s = St.open_ ~engine:"e" ~name:"orph" dir in
  St.put s ~key:"k" "v";
  St.close s;
  (* a writer killed between staging and rename leaves these behind;
     pid 3999999 is comfortably above anything alive in a test box *)
  let plant n =
    let oc = open_out (Filename.concat dir n) in
    output_string oc "{\"half\":";
    close_out oc
  in
  plant "index.json.tmp.3999999.0";
  plant "index.json.tmp.3999999.1";
  (* a staging file of a LIVE process (ours) must survive the sweep:
     it belongs to a concurrent writer mid-rewrite, not a dead one *)
  let live = Printf.sprintf "index.json.tmp.%d.7" (Unix.getpid ()) in
  plant live;
  let counter = Tel.Counter.make "util.store.orphan_tmp_removed" in
  let before = Tel.Counter.value counter in
  let s = St.open_ ~engine:"e" ~name:"orph" dir in
  Alcotest.(check int) "dead writers' orphans counted" (before + 2)
    (Tel.Counter.value counter);
  Alcotest.(check bool) "dead writers' orphans removed" true
    (Sys.readdir dir |> Array.to_list
    |> List.for_all (fun n ->
           n = live
           || not
                (String.length n >= 14
                && String.sub n 0 14 = "index.json.tmp")));
  Alcotest.(check bool) "live writer's staging file kept" true
    (Sys.file_exists (Filename.concat dir live));
  Sys.remove (Filename.concat dir live);
  Alcotest.(check (option string)) "records untouched" (Some "v")
    (St.find s ~key:"k");
  St.close s

let test_store_index_recovery () =
  with_tel @@ fun () ->
  with_store_dir @@ fun dir ->
  let s = St.open_ ~engine:"e" ~name:"rix" dir in
  St.put s ~key:"k1" "v1";
  St.put s ~key:"k2" "v2";
  St.close s;
  (* a stale index (e.g. from a killed writer's last successful rename)
     must lose to the records file, which is the source of truth *)
  let oc = open_out (Filename.concat dir "index.json") in
  output_string oc
    {|{"name":"rix","engine":"e","records":7,"shards":0}|};
  close_out oc;
  let counter = Tel.Counter.make "util.store.index_recovered" in
  let before = Tel.Counter.value counter in
  let s = St.open_ ~engine:"e" ~name:"rix" dir in
  Alcotest.(check int) "recovery counted" (before + 1)
    (Tel.Counter.value counter);
  Alcotest.(check int) "true record count" 2 (St.entries s);
  Alcotest.(check (option string)) "records intact" (Some "v1")
    (St.find s ~key:"k1");
  St.close s;
  (match St.index dir with
  | None -> Alcotest.fail "index missing after recovery"
  | Some ix -> Alcotest.(check int) "index rebuilt" 2 ix.St.ix_records);
  (* a second open with the honest index is not a recovery *)
  let before = Tel.Counter.value counter in
  let s = St.open_ ~engine:"e" ~name:"rix" dir in
  St.close s;
  Alcotest.(check int) "no spurious recovery" before
    (Tel.Counter.value counter)

let test_store_merge_rules () =
  with_store_dir @@ fun dst_dir ->
  with_store_dir @@ fun src_dir ->
  (* dst holds records from an old build *)
  let d = St.open_ ~engine:"old" ~name:"m" dst_dir in
  St.put d ~key:"kA" "old-a";
  St.put d ~key:"kB" "same";
  St.close d;
  (* src mixes records from the current build and a third one *)
  let s = St.open_ ~engine:"cur" ~name:"m" src_dir in
  St.put s ~key:"kA" "cur-a";
  St.put s ~key:"kB" "same";
  St.put s ~key:"kC" "cur-c";
  St.close s;
  let s = St.open_ ~engine:"third" ~name:"m" src_dir in
  St.put s ~key:"kD" "third-d";
  St.close s;
  let src = St.open_ ~engine:"cur" ~name:"m" src_dir in
  let dst = St.open_ ~engine:"cur" ~name:"m" dst_dir in
  let stats = St.merge ~src ~dst in
  (* kC+kD added; kA replaced (src is current-engine, dst copy is
     not); kB kept (identical) *)
  Alcotest.(check int) "added" 2 stats.St.added;
  Alcotest.(check int) "replaced" 1 stats.St.replaced;
  Alcotest.(check int) "kept" 1 stats.St.kept;
  (* the open destination sees the merge immediately *)
  Alcotest.(check (option string)) "conflict: current engine wins"
    (Some "cur-a") (St.find dst ~key:"kA");
  Alcotest.(check (option string)) "added record" (Some "cur-c")
    (St.find dst ~key:"kC");
  Alcotest.(check (option string)) "copied record" (Some "third-d")
    (St.find dst ~key:"kD");
  (* a copied record keeps its original engine stamp *)
  let tally = St.engines dst in
  Alcotest.(check (option int)) "third-party stamp survives the copy"
    (Some 1)
    (List.assoc_opt "third" tally);
  St.close src;
  St.close dst;
  (* the reverse conflict: a stale src copy never clobbers a
     current-engine dst record *)
  let d = St.open_ ~engine:"cur" ~name:"m" dst_dir in
  St.put d ~key:"kF" "cur-f";
  St.close d;
  let s = St.open_ ~engine:"old" ~name:"m" src_dir in
  St.put s ~key:"kF" "old-f";
  St.close s;
  let src = St.open_ ~engine:"cur" ~name:"m" src_dir in
  let dst = St.open_ ~engine:"cur" ~name:"m" dst_dir in
  let stats = St.merge ~src ~dst in
  Alcotest.(check int) "nothing added on re-merge" 0 stats.St.added;
  Alcotest.(check int) "stale src never replaces" 0 stats.St.replaced;
  Alcotest.(check (option string)) "current dst record kept"
    (Some "cur-f") (St.find dst ~key:"kF");
  St.close src;
  St.close dst

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "dramstress_util"
    [
      ( "linalg",
        [
          tc "identity solve" test_lu_identity;
          tc "known 2x2 system" test_lu_known_system;
          tc "pivoting on zero diagonal" test_lu_pivoting;
          tc "singular detection" test_lu_singular;
          tc "rank-deficient residue rejected" test_lu_rank_deficient_residue;
          tc "near-singular gmin system solves" test_lu_near_singular_ok;
          tc "NaN pivot rejected" test_lu_nan_pivot_rejected;
          tc "solve does not mutate input" test_lu_does_not_mutate;
          tc "mat_vec and mat_mul" test_mat_vec_mul;
          tc "norms" test_norms;
          tc "in-place LU matches solve" test_lu_in_place_matches_solve;
          tc "in-place LU pivoting" test_lu_in_place_pivoting;
          tc "in-place LU buffer reuse" test_lu_in_place_reuse;
          QCheck_alcotest.to_alcotest prop_lu_roundtrip;
        ] );
      ( "lru",
        [
          tc "find/add and stats" test_lru_basic;
          tc "eviction follows recency" test_lru_eviction_order;
          tc "replace and clear" test_lru_replace_and_clear;
        ] );
      ( "par",
        [
          tc "parallel_map equals List.map" test_par_matches_list_map;
          tc "exceptions propagate" test_par_exception_propagates;
          tc "empty and singleton inputs" test_par_empty_and_singleton;
          tc "default job count" test_par_default_jobs;
          tc "chunks split/concat contract" test_par_chunks;
          tc "resolve_lanes precedence" test_resolve_lanes;
          tc "first failure wins" test_par_first_failure_wins;
          tc "failure abandons remaining items" test_par_abandons_after_failure;
          tc "worker backtrace preserved" test_par_backtrace_preserved;
          tc "outcome variant keeps every slot" test_par_outcomes_mixed;
          tc "outcome retries_of hook" test_par_outcomes_retries_hook;
          tc "env junk degrades with one warning"
            test_par_env_warning_logged_once;
        ] );
      ( "checkpoint",
        [
          tc "record/find roundtrip" test_ck_record_find_roundtrip;
          tc "fresh open truncates" test_ck_fresh_open_truncates;
          tc "resume loads prior records" test_ck_resume_loads;
          tc "truncated final line skipped" test_ck_truncated_final_line;
          tc "memo hit/miss/fallback" test_ck_memo;
          tc "fingerprint stability" test_ck_fingerprint_stable;
          tc "truncation at every byte offset" test_ck_truncate_every_byte;
          tc "sick middle line skipped, tail replays"
            test_ck_bad_middle_line_tail_replays;
          tc "refused payload recomputed and repaired"
            test_ck_corrupt_payload_repaired;
        ] );
      ( "store",
        [
          tc "put/find, overwrite, reopen" test_store_roundtrip;
          tc "index file and engine tally" test_store_index_and_engines;
          tc "truncated tail tolerated" test_store_truncated_tail;
          tc "memo across reopen" test_store_memo;
          tc "fingerprint stable across domains"
            test_fingerprint_domain_stable;
          QCheck_alcotest.to_alcotest prop_fingerprint_injective;
          QCheck_alcotest.to_alcotest prop_fingerprint_stable_reserialized;
          tc "sharded roundtrip and layout autodetect"
            test_store_sharded_roundtrip;
          tc "shards on a single-file store refused"
            test_store_layout_conflict_refused;
          tc "orphan index temp files swept" test_store_orphan_tmp_cleanup;
          tc "stale index recovered from records"
            test_store_index_recovery;
          tc "merge union and staleness rules" test_store_merge_rules;
        ] );
      ( "chaos",
        [
          tc "dormant by default" test_chaos_dormant_by_default;
          tc "spec parsing" test_chaos_spec_parsing;
          tc "Every-mode determinism" test_chaos_every_determinism;
          tc "Once-mode fires exactly once" test_chaos_once_mode;
          tc "injection accounting" test_chaos_injection_accounting;
          tc "environment parsing" test_chaos_env_parsing;
          tc "truncated records resumable" test_chaos_truncated_record_resume;
          tc "worker faults become Failed outcomes"
            test_chaos_worker_fault_outcomes;
        ] );
      ( "bisect",
        [
          tc "linear root" test_root_linear;
          tc "cosine root" test_root_cos;
          tc "missing bracket raises" test_root_no_bracket;
          tc "threshold, both orientations" test_threshold_updown;
          tc "log-axis threshold" test_threshold_log;
          tc "guarded threshold" test_guarded;
          QCheck_alcotest.to_alcotest prop_threshold_finds_boundary;
        ] );
      ( "interp",
        [
          tc "eval and clamping" test_interp_eval;
          tc "input sorting" test_interp_unsorted_input;
          tc "duplicate abscissa" test_interp_duplicate;
          tc "of_sorted_arrays" test_interp_of_sorted_arrays;
          tc "crossings of a level" test_interp_crossings;
          tc "no crossing" test_interp_no_crossing;
          tc "curve intersections" test_interp_intersections;
          tc "map_y" test_interp_map_y;
        ] );
      ( "grid",
        [
          tc "linspace" test_linspace;
          tc "logspace" test_logspace;
          tc "arange" test_arange;
          tc "decades" test_decades;
          QCheck_alcotest.to_alcotest prop_logspace_monotone;
        ] );
      ( "stats+units",
        [
          tc "summary statistics" test_stats_basic;
          tc "empty input raises" test_stats_empty;
          tc "unit conversions and SI printing" test_units;
        ] );
      ( "csv+plot",
        [
          tc "csv basics" test_csv_basic;
          tc "csv quoting" test_csv_quoting;
          tc "csv float formatting" test_csv_floats;
          tc "plot renders series" test_plot_renders_series;
          tc "log axis and markers" test_plot_log_axis_and_hlines;
          tc "empty plot" test_plot_empty;
          tc "character grid" test_plot_grid;
        ] );
    ]
