(* Telemetry subsystem tests: probe semantics when disabled, counter
   integrity under parallel fan-out, sink behaviour, and agreement
   between the telemetry counters and the Ops cache statistics. Also
   pins the Celsius -> Kelvin unit boundary (Stress.temp_kelvin). *)

module Tel = Dramstress_util.Telemetry
module Par = Dramstress_util.Par
module S = Dramstress_dram.Stress
module O = Dramstress_dram.Ops
module D = Dramstress_defect.Defect

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Temperature unit boundary                                          *)
(* ------------------------------------------------------------------ *)

let test_temp_kelvin () =
  (* the paper's nominal SC is 27 degC; the solver works in Kelvin *)
  check_float "nominal 27 degC is 300.15 K" 300.15 (S.temp_kelvin S.nominal);
  check_float "temp_k alias agrees" (S.temp_kelvin S.nominal)
    (S.temp_k S.nominal);
  check_float "explicit 27 degC" 300.15
    (S.temp_kelvin (S.with_temp_c S.nominal 27.0));
  check_float "0 degC is 273.15 K" 273.15
    (S.temp_kelvin (S.with_temp_c S.nominal 0.0));
  check_float "solver default matches the nominal SC" 300.15
    Dramstress_engine.Options.default.temp

(* ------------------------------------------------------------------ *)
(* Job-count resolution                                               *)
(* ------------------------------------------------------------------ *)

let test_resolve_jobs () =
  let with_env v f =
    let old = Sys.getenv_opt "DRAMSTRESS_JOBS" in
    Unix.putenv "DRAMSTRESS_JOBS" v;
    Fun.protect f ~finally:(fun () ->
        Unix.putenv "DRAMSTRESS_JOBS" (Option.value old ~default:""))
  in
  with_env "3" (fun () ->
      Alcotest.(check int) "env wins over cores" 3 (Par.resolve_jobs ());
      Alcotest.(check int) "explicit arg wins over env" 2
        (Par.resolve_jobs ~jobs:2 ());
      Alcotest.(check int) "arg clamped to >= 1" 1
        (Par.resolve_jobs ~jobs:0 ()));
  with_env "not-a-number" (fun () ->
      Alcotest.(check bool) "junk env falls back to >= 1" true
        (Par.resolve_jobs () >= 1));
  with_env "-4" (fun () ->
      Alcotest.(check bool) "negative env falls back to >= 1" true
        (Par.resolve_jobs () >= 1))

(* ------------------------------------------------------------------ *)
(* Probes while disabled                                              *)
(* ------------------------------------------------------------------ *)

let test_disabled_records_nothing () =
  Tel.set_enabled false;
  let c = Tel.Counter.make "test.disabled.counter" in
  let h =
    Tel.Histogram.make ~unit_:"ms" ~lo:0.1 ~hi:100.0 ~buckets:8
      "test.disabled.hist"
  in
  let c0 = Tel.Counter.value c and h0 = Tel.Histogram.count h in
  Tel.Counter.incr c;
  Tel.Counter.add c 41;
  Tel.Histogram.observe h 1.0;
  let timed = Tel.Histogram.time_ms h (fun () -> 7) in
  Alcotest.(check int) "time_ms still runs the thunk" 7 timed;
  Alcotest.(check int) "counter untouched" c0 (Tel.Counter.value c);
  Alcotest.(check int) "histogram untouched" h0 (Tel.Histogram.count h);
  (* a custom sink must see no events, and attrs must not be evaluated *)
  let events = ref 0 and attrs_forced = ref false in
  Tel.set_sink (Tel.Sink.custom (fun _ -> incr events));
  let y =
    Tel.with_span "test.disabled.span"
      ~attrs:(fun () ->
        attrs_forced := true;
        [ ("k", Tel.Int 1) ])
      (fun () -> 11)
  in
  Tel.close_sink ();
  Alcotest.(check int) "with_span still runs the thunk" 11 y;
  Alcotest.(check int) "no events emitted while disabled" 0 !events;
  Alcotest.(check bool) "attrs thunk not evaluated" false !attrs_forced

let test_null_sink_skips_attrs () =
  (* enabled, but with the null sink: spans must not build attributes *)
  Tel.set_enabled true;
  Tel.close_sink ();
  let attrs_forced = ref false in
  let y =
    Tel.with_span "test.null.span"
      ~attrs:(fun () ->
        attrs_forced := true;
        [])
      (fun () -> 5)
  in
  Tel.set_enabled false;
  Alcotest.(check int) "thunk result" 5 y;
  Alcotest.(check bool) "attrs skipped on the null sink" false !attrs_forced

(* ------------------------------------------------------------------ *)
(* Counter integrity under Par fan-out                                *)
(* ------------------------------------------------------------------ *)

let test_counter_monotone_under_par () =
  Tel.set_enabled true;
  let c = Tel.Counter.make "test.fanout.counter" in
  let c0 = Tel.Counter.value c in
  let items = List.init 64 Fun.id in
  let per_item = 500 in
  let results =
    Par.parallel_map ~jobs:4
      (fun i ->
        for _ = 1 to per_item do
          Tel.Counter.incr c
        done;
        i)
      items
  in
  Tel.set_enabled false;
  Alcotest.(check (list int)) "map order preserved" items results;
  Alcotest.(check int) "no increment lost across domains"
    (c0 + (64 * per_item))
    (Tel.Counter.value c);
  (* make is idempotent: a second handle under the same name reads the
     same cell, so cross-library sharing works *)
  let c' = Tel.Counter.make "test.fanout.counter" in
  Alcotest.(check int) "make is idempotent per name" (Tel.Counter.value c)
    (Tel.Counter.value c')

(* ------------------------------------------------------------------ *)
(* JSON-lines sink round-trip                                         *)
(* ------------------------------------------------------------------ *)

let test_jsonl_roundtrip () =
  let path = Filename.temp_file "dramstress_tel" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Tel.set_enabled true;
  Tel.set_sink (Tel.Sink.jsonl_file path);
  for i = 1 to 3 do
    Tel.with_span "test.jsonl.span"
      ~attrs:(fun () ->
        [
          ("i", Tel.Int i);
          ("r", Tel.Float 1.5);
          ("ok", Tel.Bool true);
          ("msg", Tel.Str {|quote " and \ back|});
        ])
      (fun () -> ())
  done;
  Tel.close_sink ();
  Tel.set_enabled false;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Alcotest.(check int) "one line per span" 3 (List.length lines);
  List.iteri
    (fun idx line ->
      let has needle =
        let n = String.length needle and l = String.length line in
        let rec go i = i + n <= l && (String.sub line i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "line is one JSON object" true
        (String.length line > 2
        && line.[0] = '{'
        && line.[String.length line - 1] = '}');
      Alcotest.(check bool) "span name present" true
        (has {|"name":"test.jsonl.span"|});
      Alcotest.(check bool) "int attr round-trips" true
        (has (Printf.sprintf {|"i":%d|} (idx + 1)));
      Alcotest.(check bool) "bool attr round-trips" true (has {|"ok":true|});
      Alcotest.(check bool) "string attr is escaped" true
        (has {|quote \" and \\ back|});
      Alcotest.(check bool) "duration field present" true (has {|"dur_ms":|}))
    lines

(* ------------------------------------------------------------------ *)
(* Cache counters vs Ops.cache_stats on a repeated plane sweep        *)
(* ------------------------------------------------------------------ *)

let cval snap name =
  match List.assoc_opt name snap.Tel.counters with
  | Some v -> v
  | None -> Alcotest.failf "counter %s missing from snapshot" name

let test_cache_counters_reconcile () =
  (* start both ledgers from zero so they must agree exactly *)
  O.set_caching true;
  O.clear_cache ();
  O.Cache.reset_stats O.Cache.default;
  O.reset_run_count ();
  O.reset_lane_fallbacks ();
  Tel.reset ();
  Tel.set_enabled true;
  let plane () =
    Dramstress_core.Plane.write_plane ~jobs:1 ~n_ops:2
      ~rops:[ 5e3; 5e5 ] ~stress:S.nominal ~kind:D.Short_to_gnd
      ~placement:D.True_bl ~op:O.W0 ()
  in
  let p1 = plane () in
  let mid = O.cache_stats () in
  Alcotest.(check bool) "first sweep ran simulations" true (mid.misses > 0);
  let p2 = plane () in
  Tel.set_enabled false;
  let st = O.cache_stats () in
  let snap = Tel.snapshot () in
  Alcotest.(check int) "telemetry requests = cache requests" st.requests
    (cval snap "dram.ops.requests");
  Alcotest.(check int) "telemetry hits = cache hits" st.hits
    (cval snap "dram.ops.cache_hits");
  Alcotest.(check int) "telemetry misses = cache misses" st.misses
    (cval snap "dram.ops.cache_misses");
  Alcotest.(check int) "telemetry evictions = cache evictions" st.evictions
    (cval snap "dram.ops.cache_evictions");
  Alcotest.(check int) "requests split into hits + misses"
    st.requests (st.hits + st.misses);
  (* the repeat sweep is identical, so it must be served from cache *)
  Alcotest.(check int) "repeat sweep adds no misses" mid.misses st.misses;
  Alcotest.(check bool) "repeat sweep hits the cache" true
    (st.hits > mid.hits);
  (* every electrical simulation is one transient run (scalar path) or
     one ensemble lane (batched path); with no retries or lane
     fallbacks in this healthy sweep the ledgers reconcile exactly *)
  Alcotest.(check int) "misses = transient runs + ensemble lanes" st.misses
    (cval snap "engine.transient.runs" + cval snap "engine.ensemble.lanes");
  Alcotest.(check int) "no lane fell back to the scalar ladder" 0
    (O.lane_fallbacks ());
  (* and the planes themselves agree *)
  Alcotest.(check (float 1e-12)) "cached sweep reproduces vmp" p1.vmp p2.vmp

let () =
  Alcotest.run "telemetry"
    [
      ( "units",
        [
          Alcotest.test_case "temp_kelvin boundary" `Quick test_temp_kelvin;
          Alcotest.test_case "resolve_jobs precedence" `Quick
            test_resolve_jobs;
        ] );
      ( "probes",
        [
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "null sink skips attrs" `Quick
            test_null_sink_skips_attrs;
          Alcotest.test_case "counters monotone under fan-out" `Quick
            test_counter_monotone_under_par;
        ] );
      ( "sinks",
        [ Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip ] );
      ( "cache",
        [
          Alcotest.test_case "counters reconcile with cache_stats" `Slow
            test_cache_counters_reconcile;
        ] );
    ]
