(* Supervision machinery of Util.Procpool, exercised with real forked
   processes: crash-retry, quarantine after K deaths, wedge-kill via
   the task timeout, and pool shutdown. Fork-based, so this lives in
   its own binary that never spawns a domain. *)

module Procpool = Dramstress_util.Procpool

(* The worker function is interpreted from the task payload so one
   pool shape serves every scenario:
     "echo:X"      -> returns X
     "attempt"     -> returns the attempt number it was handed
     "raise:M"     -> raises Failure M inside the worker (no death)
     "die-under:N" -> SIGKILLs itself while attempt < N, then echoes
     "hang"        -> sleeps forever (only the task timeout ends it) *)
let worker ~attempt payload =
  let prefixed p =
    if String.length payload >= String.length p
       && String.sub payload 0 (String.length p) = p
    then Some (String.sub payload (String.length p)
                 (String.length payload - String.length p))
    else None
  in
  match
    (prefixed "echo:", prefixed "raise:", prefixed "die-under:", payload)
  with
  | Some x, _, _, _ -> x
  | _, Some m, _, _ -> failwith m
  | _, _, Some n, _ ->
    if attempt < int_of_string n then Unix.kill (Unix.getpid ()) Sys.sigkill;
    Printf.sprintf "survived:%d" attempt
  | _, _, _, "attempt" -> string_of_int attempt
  | _, _, _, "hang" ->
    while true do
      Unix.sleepf 3600.0
    done;
    assert false
  | _ -> failwith ("unknown task " ^ payload)

let fast_backoff = (0.01, 0.05)

let with_pool ?(workers = 2) ?(max_task_deaths = 3) ?task_timeout
    ?on_worker_restart f =
  let pool =
    Procpool.create ~max_task_deaths ~backoff:fast_backoff ?task_timeout
      ?on_worker_restart ~workers ~worker ()
  in
  Fun.protect ~finally:(fun () -> Procpool.shutdown pool) (fun () -> f pool)

let ok = function
  | Ok v -> v
  | Error (`Worker_error m) -> Alcotest.failf "worker error: %s" m
  | Error (`Worker_lost n) -> Alcotest.failf "worker lost (%d deaths)" n

let test_echo_concurrent () =
  with_pool ~workers:2 @@ fun pool ->
  Alcotest.(check int) "pool size" 2 (Procpool.size pool);
  (* more threads than workers: excess callers queue on the pool *)
  let results = Array.make 8 "" in
  let threads =
    List.init 8 (fun i ->
        Thread.create
          (fun () ->
            results.(i) <- ok (Procpool.exec pool (Printf.sprintf "echo:r%d" i)))
          ())
  in
  List.iter Thread.join threads;
  Array.iteri
    (fun i r -> Alcotest.(check string) "echoed" (Printf.sprintf "r%d" i) r)
    results;
  Alcotest.(check string) "first attempt is 0" "0"
    (ok (Procpool.exec pool "attempt"))

let test_worker_error_is_not_a_death () =
  with_pool ~workers:1 @@ fun pool ->
  (match Procpool.exec pool "raise:boom" with
  | Error (`Worker_error m) ->
    let contains s sub =
      let n = String.length s and k = String.length sub in
      let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "message carried" true (contains m "boom")
  | Ok _ -> Alcotest.fail "raise must surface as Worker_error"
  | Error (`Worker_lost _) ->
    Alcotest.fail "an exception is not a process death");
  (* same worker still alive: a raise never trips supervision *)
  Alcotest.(check string) "worker survived the raise" "after"
    (ok (Procpool.exec pool "echo:after"))

let test_crash_retry_and_restart () =
  let restarts = ref 0 in
  with_pool ~workers:1 ~max_task_deaths:3
    ~on_worker_restart:(fun () -> incr restarts)
  @@ fun pool ->
  (* kills the first two workers that pick it up, third attempt lands *)
  Alcotest.(check string) "third attempt survives" "survived:2"
    (ok (Procpool.exec pool "die-under:2"));
  (* both corpses are replaced (asynchronously) by the supervisor *)
  let rec await n =
    if !restarts >= 2 then ()
    else if n = 0 then
      Alcotest.failf "only %d restart(s) after two deaths" !restarts
    else begin
      Unix.sleepf 0.05;
      await (n - 1)
    end
  in
  await 100;
  Alcotest.(check int) "exactly one restart per death" 2 !restarts;
  Alcotest.(check string) "pool serves after restarts" "alive"
    (ok (Procpool.exec pool "echo:alive"))

let test_poison_quarantine () =
  with_pool ~workers:1 ~max_task_deaths:3 @@ fun pool ->
  (match Procpool.exec pool "die-under:1000" with
  | Error (`Worker_lost 3) -> ()
  | Error (`Worker_lost n) -> Alcotest.failf "quarantined after %d, want 3" n
  | Ok _ | Error (`Worker_error _) ->
    Alcotest.fail "a lethal task must be quarantined as Worker_lost");
  (* graceful degradation: the task died, the pool did not *)
  Alcotest.(check string) "pool alive after quarantine" "ok"
    (ok (Procpool.exec pool "echo:ok"))

let test_task_timeout_kills_wedged_worker () =
  with_pool ~workers:1 ~max_task_deaths:2 ~task_timeout:0.3 @@ fun pool ->
  let t0 = Unix.gettimeofday () in
  (match Procpool.exec pool "hang" with
  | Error (`Worker_lost 2) -> ()
  | Ok _ | Error _ -> Alcotest.fail "a hang must end as Worker_lost");
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "timeout bounded the hang" true (elapsed < 10.0);
  Alcotest.(check string) "pool alive after wedge kills" "ok"
    (ok (Procpool.exec pool "echo:ok"))

let test_shutdown () =
  let pool =
    Procpool.create ~backoff:fast_backoff ~workers:2 ~worker ()
  in
  Alcotest.(check string) "pool works" "x" (ok (Procpool.exec pool "echo:x"));
  Procpool.shutdown pool;
  (match Procpool.exec pool "echo:y" with
  | Error (`Worker_error _) -> ()
  | Ok _ | Error (`Worker_lost _) ->
    Alcotest.fail "exec after shutdown must fail as Worker_error");
  (* every child reaped: no zombies left for this process *)
  match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | exception Unix.Unix_error (ECHILD, _, _) -> ()
  | 0, _ -> Alcotest.fail "a child is still running after shutdown"
  | _ -> Alcotest.fail "a zombie survived shutdown"

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "dramstress_procpool"
    [
      ( "procpool",
        [
          tc "echo through concurrent callers" test_echo_concurrent;
          tc "worker exception is an error, not a death"
            test_worker_error_is_not_a_death;
          tc "crash retried on fresh workers, corpses restarted"
            test_crash_retry_and_restart;
          tc "poison task quarantined after K deaths" test_poison_quarantine;
          tc "task timeout SIGKILLs a wedged worker"
            test_task_timeout_kills_wedged_worker;
          tc "shutdown reaps every worker" test_shutdown;
        ] );
    ]
