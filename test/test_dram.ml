(* Electrical behaviour tests of the DRAM column model: functional
   correctness of operations, defect responses and stress effects. *)

module S = Dramstress_dram.Stress
module T = Dramstress_dram.Tech
module Tm = Dramstress_dram.Timing
module O = Dramstress_dram.Ops
module D = Dramstress_defect.Defect

let nominal = S.nominal
let bits oc = String.concat "" (List.map string_of_int (O.sensed_bits oc))

(* ------------------------------------------------------------------ *)
(* Stress record                                                       *)
(* ------------------------------------------------------------------ *)

let test_stress_validate () =
  S.validate nominal;
  Alcotest.check_raises "bad duty" (Invalid_argument "Stress: duty not in (0,1)")
    (fun () -> S.validate (S.with_duty nominal 1.0));
  Alcotest.check_raises "bad tcyc" (Invalid_argument "Stress: tcyc <= 0")
    (fun () -> S.validate (S.with_tcyc nominal 0.0));
  Alcotest.check_raises "cold" (Invalid_argument "Stress: temperature below 0 K")
    (fun () -> S.validate (S.with_temp_c nominal (-300.0)));
  Alcotest.check_raises "negative wait" (Invalid_argument "Stress: wait < 0")
    (fun () -> S.validate (S.with_wait nominal (-1.0)));
  Alcotest.check_raises "negative hammer" (Invalid_argument "Stress: hammer < 0")
    (fun () -> S.validate (S.with_hammer nominal (-1)));
  Alcotest.check_raises "trim swallows the cycle"
    (Invalid_argument "Stress: |twr_trim| >= tcyc") (fun () ->
      S.validate (S.with_twr_trim nominal nominal.S.tcyc))

let test_stress_axes () =
  let sc = S.set nominal S.Supply_voltage 2.1 in
  Alcotest.(check (float 1e-9)) "set/get" 2.1 (S.get sc S.Supply_voltage);
  Alcotest.(check (float 1e-9)) "others untouched" nominal.S.tcyc
    (S.get sc S.Cycle_time);
  Alcotest.(check (float 1e-9)) "kelvin" 300.15 (S.temp_k nominal);
  (* discrete extension axes decode from the float representation *)
  let sc = S.set nominal S.Hammer 99.6 in
  Alcotest.(check bool) "hammer rounds" true (sc.S.hammer = 100);
  let sc = S.set nominal S.Pattern 0.4 in
  Alcotest.(check bool) "pattern snaps to nearest" true
    (sc.S.pattern = S.Checkerboard);
  Alcotest.(check (float 1e-9)) "pattern reads back as float" 0.5
    (S.get sc S.Pattern)

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)
(* ------------------------------------------------------------------ *)

let test_timing_structure () =
  let ph = Tm.phases T.default nominal in
  Alcotest.(check bool) "ordering" true
    (ph.Tm.t_pre_off < ph.Tm.t_wl_on
    && ph.Tm.t_wl_on < ph.Tm.t_sense
    && ph.Tm.t_sense < ph.Tm.t_wr
    && ph.Tm.t_wr < ph.Tm.t_wl_off
    && ph.Tm.t_wl_off < ph.Tm.t_cyc)

let test_timing_write_window_shrinks_superlinearly () =
  let w tcyc = Tm.write_window (Tm.phases T.default (S.with_tcyc nominal tcyc)) in
  let w60 = w 60e-9 and w55 = w 55e-9 in
  Alcotest.(check bool) "5 ns cycle cut removes 5 ns of write window" true
    (w60 -. w55 > 4.9e-9 && w55 < 0.7 *. w60)

let test_timing_sense_fixed () =
  let s tcyc = (Tm.phases T.default (S.with_tcyc nominal tcyc)).Tm.t_sense in
  Alcotest.(check (float 1e-12)) "sense instant independent of tcyc"
    (s 60e-9) (s 55e-9)

let test_timing_duty_moves_wl_off () =
  let off duty = (Tm.phases T.default (S.with_duty nominal duty)).Tm.t_wl_off in
  Alcotest.(check bool) "higher duty holds the word line longer" true
    (off 0.65 > off 0.35)

let test_timing_too_short () =
  Alcotest.check_raises "unopenable word line"
    (Invalid_argument "Timing.phases: cycle too short to open the word line")
    (fun () -> ignore (Tm.phases T.default (S.with_tcyc nominal 5e-9)))

(* ------------------------------------------------------------------ *)
(* Operations on a healthy column                                      *)
(* ------------------------------------------------------------------ *)

let test_good_cell_functional () =
  let oc = O.run ~stress:nominal ~vc_init:0.0 [ O.W1; O.R; O.W0; O.R; O.W1; O.R ] in
  Alcotest.(check string) "reads" "101" (bits oc)

let test_good_cell_rails () =
  let oc = O.run ~stress:nominal ~vc_init:1.2 [ O.W1; O.W0 ] in
  (match oc.O.results with
  | [ a; b ] ->
    Alcotest.(check bool) "w1 reaches vdd" true (a.O.vc_end > 2.3);
    Alcotest.(check bool) "w0 reaches gnd" true (Float.abs b.O.vc_end < 0.05)
  | _ -> Alcotest.fail "expected two results")

let test_read_is_restoring () =
  (* a marginal-high cell is pulled to a full rail by the read *)
  let oc = O.run ~stress:nominal ~vc_init:2.0 [ O.R; O.R ] in
  match oc.O.results with
  | [ first; second ] ->
    Alcotest.(check (option int)) "reads 1" (Some 1) first.O.sensed;
    Alcotest.(check bool) "restored high" true (second.O.vc_end > 2.2)
  | _ -> Alcotest.fail "expected two results"

let test_read_destructive_below_threshold () =
  let oc = O.run ~stress:nominal ~vc_init:0.7 [ O.R ] in
  match oc.O.results with
  | [ r ] ->
    Alcotest.(check (option int)) "reads 0" (Some 0) r.O.sensed;
    Alcotest.(check bool) "written back low" true (r.O.vc_end < 0.2)
  | _ -> Alcotest.fail "expected one result"

let test_separation_healthy () =
  let oc = O.run ~stress:nominal ~vc_init:0.0 [ O.W1; O.R ] in
  match List.nth oc.O.results 1 with
  | { O.separation = Some s; _ } ->
    Alcotest.(check bool) "full-rail separation" true (s > 2.0)
  | _ -> Alcotest.fail "expected separation on read"

let test_pause_retains_recent_write () =
  let oc = O.run ~stress:nominal ~vc_init:0.0 [ O.W1; O.Pause 1e-4; O.R ] in
  Alcotest.(check string) "1 retained over 100 us" "1" (bits oc)

let test_empty_sequence_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Ops.run: empty sequence")
    (fun () -> ignore (O.run ~stress:nominal []))

let test_parse_seq () =
  Alcotest.(check bool) "round trip" true
    (O.parse_seq "w1 w1 w0 r" = [ O.W1; O.W1; O.W0; O.R ]);
  Alcotest.(check bool) "commas" true (O.parse_seq "w0,r" = [ O.W0; O.R ]);
  (match O.parse_seq "w1 p1e-3 r" with
  | [ O.W1; O.Pause p; O.R ] -> Alcotest.(check (float 1e-12)) "pause" 1e-3 p
  | _ -> Alcotest.fail "pause parse");
  Alcotest.(check string) "to_string" "w1 w0 r"
    (O.seq_to_string [ O.W1; O.W0; O.R ]);
  Alcotest.check_raises "junk" (Invalid_argument "Ops.parse_seq: unknown op x")
    (fun () -> ignore (O.parse_seq "x"))

(* ------------------------------------------------------------------ *)
(* Defective column behaviour                                          *)
(* ------------------------------------------------------------------ *)

let open_defect r = D.v (D.Open_cell D.At_bitline_contact) D.True_bl r

let test_open_blocks_w0 () =
  let vc r =
    let oc = O.run ~stress:nominal ~defect:(open_defect r) ~vc_init:2.4 [ O.W0 ] in
    (List.hd oc.O.results).O.vc_end
  in
  Alcotest.(check bool) "residual grows with R" true
    (vc 1e3 < 0.1 && vc 200e3 > 0.8 && vc 200e3 < vc 1e6)

let test_open_sites_equivalent () =
  (* O1, O2, O3 sit in the same series path: equal residuals *)
  let vc site =
    let d = D.v (D.Open_cell site) D.True_bl 200e3 in
    let oc = O.run ~stress:nominal ~defect:d ~vc_init:2.4 [ O.W0 ] in
    (List.hd oc.O.results).O.vc_end
  in
  let v1 = vc D.At_bitline_contact in
  let v2 = vc D.At_capacitor_contact in
  let v3 = vc D.At_plate_contact in
  Alcotest.(check bool)
    (Printf.sprintf "O1=%.3f O2=%.3f O3=%.3f" v1 v2 v3)
    true
    (Float.abs (v1 -. v2) < 0.05 && Float.abs (v1 -. v3) < 0.05)

let test_open_detected_by_paper_sequence () =
  let oc =
    O.run ~stress:nominal ~defect:(open_defect 400e3) ~vc_init:2.4
      [ O.W1; O.W1; O.W0; O.R ]
  in
  Alcotest.(check string) "fails r0" "1" (bits oc)

let test_open_escapes_when_small () =
  let oc =
    O.run ~stress:nominal ~defect:(open_defect 20e3) ~vc_init:2.4
      [ O.W1; O.W1; O.W0; O.R ]
  in
  Alcotest.(check string) "passes" "0" (bits oc)

let test_comp_placement_inverts_logic () =
  (* same physical behaviour, 0/1 interchanged: on the complementary
     line the open blocks the logical w1 instead *)
  let d = D.v (D.Open_cell D.At_bitline_contact) D.Comp_bl 400e3 in
  let oc = O.run ~stress:nominal ~defect:d ~vc_init:0.0 [ O.W0; O.W0; O.W1; O.R ] in
  Alcotest.(check string) "fails r1 with 0" "0" (bits oc)

let test_short_to_gnd_leaks_one () =
  let d = D.v D.Short_to_gnd D.True_bl 1e6 in
  let oc = O.run ~stress:nominal ~defect:d ~vc_init:0.0 [ O.W1; O.Pause 1e-3; O.R ] in
  Alcotest.(check string) "1 leaked away" "0" (bits oc)

let test_short_to_vdd_lifts_zero () =
  let d = D.v D.Short_to_vdd D.True_bl 1e6 in
  let oc = O.run ~stress:nominal ~defect:d ~vc_init:2.4 [ O.W0; O.Pause 1e-3; O.R ] in
  Alcotest.(check string) "0 pulled up" "1" (bits oc)

let test_short_harmless_when_huge () =
  let d = D.v D.Short_to_gnd D.True_bl 1e12 in
  let oc = O.run ~stress:nominal ~defect:d ~vc_init:0.0 [ O.W1; O.Pause 1e-3; O.R ] in
  Alcotest.(check string) "no effect" "1" (bits oc)

let test_bridge_weld_collapses_separation () =
  (* a hard bridge to the paired line keeps the latch from separating *)
  let d = D.v D.Bridge_to_paired_bl D.True_bl 2e3 in
  let oc = O.run ~stress:nominal ~defect:d ~vc_init:2.4 [ O.W1; O.W0; O.R ] in
  match List.nth oc.O.results 2 with
  | { O.separation = Some s; _ } ->
    Alcotest.(check bool) (Printf.sprintf "collapsed (%.2f V)" s) true (s < 0.5)
  | _ -> Alcotest.fail "expected separation"

let test_neighbour_bridge_couples_over_pause () =
  let d = D.v D.Bridge_to_neighbour D.True_bl 1e6 in
  (* victim written 0, aggressor holds vdd; a pause equilibrates them
     towards the shared mid-level (just below the sense threshold at
     room temperature -- the hot read in the next test tips it over) *)
  let oc =
    O.run ~stress:nominal ~defect:d ~vc_init:2.4 ~v_neighbour:2.4
      [ O.W0; O.Pause 1e-3; O.R ]
  in
  let vc_after_pause = (List.nth oc.O.results 1).O.vc_end in
  Alcotest.(check bool)
    (Printf.sprintf "victim pulled up to %.2f V" vc_after_pause)
    true
    (vc_after_pause > 0.8 && vc_after_pause < 1.6)

let test_neighbour_bridge_detected_hot () =
  let d = D.v D.Bridge_to_neighbour D.True_bl 30e6 in
  let hot = S.with_temp_c nominal 87.0 in
  let oc =
    O.run ~stress:hot ~defect:d ~vc_init:2.4 ~v_neighbour:2.4
      [ O.W0; O.Pause 1e-3; O.R ]
  in
  Alcotest.(check string) "coupling + hot leakage flips the 0" "1" (bits oc)

(* ------------------------------------------------------------------ *)
(* Stress effects (the paper's Figures 3-5 directions)                 *)
(* ------------------------------------------------------------------ *)

let residual_after_w0 stress =
  let oc = O.run ~stress ~defect:(open_defect 200e3) ~vc_init:stress.S.vdd [ O.W0 ] in
  (List.hd oc.O.results).O.vc_end

let test_shorter_cycle_stresses_w0 () =
  Alcotest.(check bool) "55 ns leaves more charge" true
    (residual_after_w0 (S.with_tcyc nominal 55e-9)
    > residual_after_w0 nominal +. 0.2)

let test_higher_vdd_stresses_w0 () =
  Alcotest.(check bool) "2.7 V leaves more charge" true
    (residual_after_w0 (S.with_vdd nominal 2.7)
    > residual_after_w0 (S.with_vdd nominal 2.1) +. 0.1)

let test_vdd_ratio_matches_paper () =
  (* the paper's residuals 0.9 / 1.0 / 1.2 V scale with Vdd; ours must
     preserve that proportionality within 10% *)
  let r21 = residual_after_w0 (S.with_vdd nominal 2.1) in
  let r27 = residual_after_w0 (S.with_vdd nominal 2.7) in
  let ratio = r27 /. r21 in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f ~ 2.7/2.1" ratio)
    true
    (ratio > 1.15 && ratio < 1.45)

let test_temperature_leakage_direction () =
  (* a stored 0 drifts up through access-transistor leakage much faster
     when hot: the classic retention mechanism *)
  let drift temp_c =
    let st = S.with_temp_c nominal temp_c in
    let oc = O.run ~stress:st ~vc_init:0.0 [ O.Pause 10e-3; O.R ] in
    (List.hd oc.O.results).O.vc_end
  in
  Alcotest.(check bool) "hot leaks more" true (drift 87.0 > drift (-33.0))

(* ------------------------------------------------------------------ *)
(* Incremental engine vs naive assembly (golden regression)            *)
(* ------------------------------------------------------------------ *)

module E = Dramstress_engine

let test_incremental_matches_naive () =
  (* the optimized workspace path must reproduce the allocating baseline
     on a full DRAM column with a defect, for both integrators *)
  let d = D.v D.Short_to_gnd D.True_bl 500e3 in
  let ops = [ O.W1; O.R; O.W0; O.Pause 1e-5; O.R ] in
  List.iter
    (fun integrator ->
      let run naive =
        (* tight Newton tolerances: the fixed point is then unique to far
           below the 1e-9 comparison, so the check is about the assembly
           paths and not about where Newton happened to stop *)
        let sim =
          { E.Options.default with E.Options.naive_assembly = naive;
            integrator; abstol = 1e-12; reltol = 1e-10 }
        in
        O.run ~sim ~stress:nominal ~defect:d ~vc_init:1.0 ops
      in
      let a = run true and b = run false in
      Alcotest.(check (list int))
        "sensed bits agree" (O.sensed_bits a) (O.sensed_bits b);
      let ta = a.O.trace and tb = b.O.trace in
      Alcotest.(check int)
        "same point count"
        (Array.length ta.E.Transient.times)
        (Array.length tb.E.Transient.times);
      let close eps v w = Float.abs (v -. w) <= eps *. (1.0 +. Float.abs w) in
      Array.iteri
        (fun i v ->
          let w = tb.E.Transient.final_v.(i) in
          if not (close 1e-9 v w) then
            Alcotest.failf "final_v.(%d): naive %.12g vs incremental %.12g" i v
              w)
        ta.E.Transient.final_v;
      (* mid-trace points pass through sense-amp regeneration, whose
         positive feedback amplifies last-ulp summation-order differences
         before the rails collapse them again — hence the looser bound
         here; summation-order-independent trace equality at 1e-9 is
         covered by the engine-level pass-gate test *)
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun k v ->
              let w = tb.E.Transient.probe_values.(i).(k) in
              if not (close 1e-6 v w) then
                Alcotest.failf "probe %s at %d: naive %.12g vs incremental %.12g"
                  ta.E.Transient.probe_names.(i) k v w)
            row)
        ta.E.Transient.probe_values)
    [ E.Options.Backward_euler; E.Options.Trapezoidal ]

let test_memo_cache_replays () =
  (* identical requests are served from the cache: run_count still counts
     them, but only the first one simulates *)
  O.set_cache_capacity 64;
  (* fresh cache, stats zeroed *)
  let before = O.run_count () in
  let oc1 = O.run ~stress:nominal ~vc_init:0.0 [ O.W1; O.R ] in
  let oc2 = O.run ~stress:nominal ~vc_init:0.0 [ O.W1; O.R ] in
  Alcotest.(check int) "both requests counted" (before + 2) (O.run_count ());
  Alcotest.(check bool) "replayed outcome is shared" true (oc1 == oc2);
  let s = O.cache_stats () in
  Alcotest.(check int) "one simulation" 1 s.O.misses;
  Alcotest.(check int) "one replay" 1 s.O.hits;
  (* a different request misses *)
  let oc3 = O.run ~stress:nominal ~vc_init:0.1 [ O.W1; O.R ] in
  Alcotest.(check bool) "different key simulates" true (oc3 != oc1);
  Alcotest.(check int) "second miss" 2 (O.cache_stats ()).O.misses;
  (* disabling caching bypasses the table entirely *)
  O.set_caching false;
  let oc4 = O.run ~stress:nominal ~vc_init:0.0 [ O.W1; O.R ] in
  Alcotest.(check bool) "bypass returns a fresh outcome" true (oc4 != oc1);
  Alcotest.(check int) "no new hit" 1 (O.cache_stats ()).O.hits;
  O.set_caching true;
  O.set_cache_capacity 512

(* ------------------------------------------------------------------ *)
(* Retry / degradation ladder                                          *)
(* ------------------------------------------------------------------ *)

module Sc = Dramstress_dram.Sim_config

(* a Newton starved to a single iteration cannot converge anywhere — a
   deterministic solver failure for exercising the ladder without
   hunting for a pathological resistance *)
let tight_sim = { E.Options.default with E.Options.max_newton = 1 }

(* restores a workable iteration budget (1 * 100); max_step_v stays at
   the default, so the rescued solution matches a healthy run *)
let rescue_stage = Sc.Damped_newton { max_step_v = 1.0; max_newton_scale = 100 }

let run_tight ~retry () =
  O.run
    ~config:(Sc.v ~sim:tight_sim ~retry ())
    ~cache:(O.Cache.create ())
    ~stress:nominal ~defect:(open_defect 200e3) ~vc_init:2.4 [ O.W0 ]

let test_no_retry_propagates () =
  match run_tight ~retry:Sc.no_retry () with
  | _ -> Alcotest.fail "starved solver should not converge"
  | exception E.Newton.No_convergence _ -> ()

let test_retry_ladder_rescues () =
  let oc = run_tight ~retry:{ Sc.stages = [ rescue_stage ] } () in
  let rescued = (List.hd oc.O.results).O.vc_end in
  let healthy =
    O.run ~cache:(O.Cache.create ()) ~stress:nominal
      ~defect:(open_defect 200e3) ~vc_init:2.4 [ O.W0 ]
  in
  let reference = (List.hd healthy.O.results).O.vc_end in
  Alcotest.(check bool)
    (Printf.sprintf "rescued %.6f ~ healthy %.6f" rescued reference)
    true
    (Float.abs (rescued -. reference) < 1e-6)

let test_retry_ladder_exhausts () =
  match run_tight ~retry:{ Sc.stages = [ Sc.Halve_dt ] } () with
  | _ -> Alcotest.fail "halved dt cannot fix a starved Newton"
  | exception O.Exhausted_retries { attempts; stages; error } ->
    Alcotest.(check int) "one attempt" 1 attempts;
    Alcotest.(check (list string)) "stage names" [ "halve-dt" ] stages;
    (match error with
    | E.Newton.No_convergence _ -> ()
    | e -> Alcotest.failf "unexpected final error %s" (Printexc.to_string e));
    Alcotest.(check int) "retries_of reads attempts" 1
      (O.retries_of (O.Exhausted_retries { error; attempts; stages }));
    Alcotest.(check int) "retries_of ignores other exceptions" 0
      (O.retries_of Exit)

let test_retry_telemetry_reconciles () =
  let module Tel = Dramstress_util.Telemetry in
  let was = Tel.enabled () in
  Fun.protect
    ~finally:(fun () -> Tel.set_enabled was)
    (fun () ->
      Tel.set_enabled true;
      Tel.reset ();
      (* one rescued run (1 attempt, 1 degraded) and one exhausted run
         (1 attempt, 1 failed) *)
      ignore (run_tight ~retry:{ Sc.stages = [ rescue_stage ] } ());
      (try ignore (run_tight ~retry:{ Sc.stages = [ Sc.Halve_dt ] } ())
       with O.Exhausted_retries _ -> ());
      let snap = Tel.snapshot () in
      let counter name =
        match List.assoc_opt name snap.Tel.counters with
        | Some v -> v
        | None -> Alcotest.failf "counter %s missing from snapshot" name
      in
      Alcotest.(check int) "retry_attempts" 2
        (counter "dram.ops.retry_attempts");
      Alcotest.(check int) "degraded_runs" 1 (counter "dram.ops.degraded_runs");
      Alcotest.(check int) "failed_runs" 1 (counter "dram.ops.failed_runs"))

(* ------------------------------------------------------------------ *)
(* Deadlines and chaos at the operation level                          *)
(* ------------------------------------------------------------------ *)

module Chaos = Dramstress_util.Chaos
module Par = Dramstress_util.Par
module Outcome = Dramstress_util.Outcome

let with_chaos f = Fun.protect ~finally:(fun () -> Chaos.disarm ()) f

(* a solver that can never converge (one Newton iteration) under a
   microscopic wall-clock budget: the run must die of Timeout — which
   the ladder deliberately does NOT retry — not of No_convergence *)
let test_deadline_timeout_propagates () =
  let module Tel = Dramstress_util.Telemetry in
  let was = Tel.enabled () in
  Fun.protect
    ~finally:(fun () -> Tel.set_enabled was)
    (fun () ->
      Tel.set_enabled true;
      Tel.reset ();
      let config =
        Sc.v ~sim:tight_sim ~retry:{ Sc.stages = [ rescue_stage ] }
          ~deadline:1e-9 ()
      in
      (match
         O.run ~config ~cache:(O.Cache.create ()) ~stress:nominal
           ~defect:(open_defect 200e3) ~vc_init:2.4 [ O.W0 ]
       with
      | _ -> Alcotest.fail "expected Timeout"
      | exception E.Newton.Timeout { budget_s; _ } ->
        Alcotest.(check (float 0.0)) "budget echoed" 1e-9 budget_s);
      let snap = Tel.snapshot () in
      Alcotest.(check (option int)) "deadline counter" (Some 1)
        (List.assoc_opt "dram.ops.deadline_exceeded" snap.Tel.counters))

let test_deadline_generous_is_unobtrusive () =
  let config = Sc.v ~deadline:3600.0 () in
  let oc =
    O.run ~config ~cache:(O.Cache.create ()) ~stress:nominal ~vc_init:0.0
      [ O.W1; O.R ]
  in
  Alcotest.(check (list int)) "normal result" [ 1 ] (O.sensed_bits oc)

let test_deadline_validation () =
  Alcotest.check_raises "non-positive deadline"
    (Invalid_argument "Sim_config: deadline must be > 0") (fun () ->
      ignore (Sc.v ~deadline:0.0 ()))

(* the acceptance scenario: one chaos-hung point is cut off by the
   deadline and reported as Failed {error = Timeout} while the rest of
   the sweep completes normally *)
let test_sweep_hung_point_cut_off () =
  with_chaos @@ fun () ->
  (* Once-mode: exactly the first Newton solve of the campaign ignores
     its convergence test; a huge iteration budget makes it effectively
     hang until the wall-clock deadline trips *)
  Chaos.configure ~seed:0 "force_newton_diverge@+1";
  let config =
    Sc.v
      ~sim:{ E.Options.default with E.Options.max_newton = 1_000_000_000 }
      ~retry:Sc.no_retry ~deadline:0.05 ()
  in
  let cache = O.Cache.create () in
  let points = [ 100e3; 200e3; 400e3; 800e3 ] in
  let outcomes =
    Par.parallel_map_outcomes ~jobs:1 ~retries_of:O.retries_of
      (fun r ->
        let oc =
          O.run ~config ~cache ~stress:nominal ~defect:(open_defect r)
            ~vc_init:2.4 [ O.W0; O.R ]
        in
        (List.hd oc.O.results).O.vc_end)
      points
  in
  Alcotest.(check int) "every slot kept" (List.length points)
    (List.length outcomes);
  (match outcomes with
  | Outcome.Failed { error = E.Newton.Timeout { budget_s; _ }; point; _ }
    :: rest ->
    Alcotest.(check (float 0.0)) "budget in error" 0.05 budget_s;
    Alcotest.(check (float 0.0)) "failed point identified" 100e3 point;
    List.iter
      (function
        | Outcome.Ok v ->
          Alcotest.(check bool) "finite voltage" true (Float.is_finite v)
        | Outcome.Failed f ->
          Alcotest.failf "later point failed: %s"
            (Printexc.to_string f.Outcome.error))
      rest
  | _ -> Alcotest.fail "first point should have timed out");
  Alcotest.(check int) "exactly one injection" 1
    (Chaos.injected Chaos.Force_newton_diverge)

(* a transient NaN (one poisoned solve) is rescued by the built-in
   step-halving retry: the campaign result is healthy and the injection
   is still accounted *)
let test_nan_once_rescued_by_halving () =
  with_chaos @@ fun () ->
  Chaos.configure ~seed:0 "inject_nan_state@+40";
  let oc =
    O.run ~cache:(O.Cache.create ()) ~stress:nominal ~vc_init:0.0 [ O.W1; O.R ]
  in
  Alcotest.(check (list int)) "healthy readback" [ 1 ] (O.sensed_bits oc);
  Alcotest.(check int) "one injection" 1 (Chaos.injected Chaos.Inject_nan_state);
  List.iter
    (fun r ->
      Alcotest.(check bool) "finite V_c" true (Float.is_finite r.O.vc_end))
    oc.O.results

(* a sweep under sustained jacobian sabotage completes with every
   injected failure as a structured outcome — no NaN ever reaches a
   reported V_c *)
let test_sweep_survives_singular_chaos () =
  with_chaos @@ fun () ->
  Chaos.configure ~seed:1 "perturb_jacobian@200";
  let config = Sc.v ~retry:Sc.no_retry () in
  let cache = O.Cache.create () in
  let points = [ 100e3; 200e3; 400e3; 800e3; 1600e3; 3200e3 ] in
  let outcomes =
    Par.parallel_map_outcomes ~jobs:1 ~retries_of:O.retries_of
      (fun r ->
        let oc =
          O.run ~config ~cache ~stress:nominal ~defect:(open_defect r)
            ~vc_init:2.4 [ O.W0 ]
        in
        (List.hd oc.O.results).O.vc_end)
      points
  in
  let oks, failures =
    List.partition (function Outcome.Ok _ -> true | _ -> false) outcomes
  in
  Alcotest.(check int) "campaign completes" (List.length points)
    (List.length oks + List.length failures);
  Alcotest.(check bool) "chaos did strike" true
    (Chaos.injected Chaos.Perturb_jacobian > 0);
  List.iter
    (function
      | Outcome.Ok v ->
        Alcotest.(check bool) "ok is finite" true (Float.is_finite v)
      | Outcome.Failed { error; _ } -> begin
        match error with
        | E.Newton.Numerical_health _ | E.Newton.No_convergence _
        | E.Transient.Step_failed _ ->
          ()
        | e -> Alcotest.failf "unstructured failure: %s" (Printexc.to_string e)
      end)
    outcomes

(* ------------------------------------------------------------------ *)
(* Batched execution: golden parity with the scalar path               *)
(* ------------------------------------------------------------------ *)

let rel_close eps a b = Float.abs (a -. b) <= eps *. (1.0 +. Float.abs b)

let check_op_parity ~ctx (br : O.op_result) (sr : O.op_result) =
  Alcotest.(check bool)
    (ctx ^ ": vc_end matches scalar")
    true
    (rel_close 1e-9 br.O.vc_end sr.O.vc_end);
  (match (br.O.sensed, sr.O.sensed) with
  | Some b, Some s -> Alcotest.(check int) (ctx ^ ": sensed bit") s b
  | None, None -> ()
  | _ -> Alcotest.failf "%s: sensed presence differs" ctx);
  match (br.O.separation, sr.O.separation) with
  | Some b, Some s ->
    Alcotest.(check bool) (ctx ^ ": separation") true (rel_close 1e-9 b s)
  | None, None -> ()
  | _ -> Alcotest.failf "%s: separation presence differs" ctx

(* batched and scalar runs of one defect class, both with memoization
   off so every lane really simulates on its own path *)
let batch_vs_scalar ?(stress = nominal) ~tag ~kind ~placement ~rs ops =
  let lanes =
    List.mapi
      (fun i r ->
        {
          O.defect = Some (D.v kind placement r);
          vc_init = (if i mod 2 = 0 then 0.0 else 2.4);
        })
      rs
  in
  let bcache = O.Cache.create ~enabled:false () in
  let scache = O.Cache.create ~enabled:false () in
  let batched = O.run_batch ~cache:bcache ~stress ~lanes ops in
  List.iteri
    (fun i lane ->
      let ctx = Printf.sprintf "%s lane %d" tag i in
      let scalar =
        O.run ~cache:scache ?defect:lane.O.defect ~vc_init:lane.O.vc_init
          ~stress ops
      in
      match List.nth batched i with
      | Error e -> Alcotest.failf "%s failed: %s" ctx (Printexc.to_string e)
      | Ok oc ->
        Alcotest.(check int)
          (ctx ^ ": op count")
          (List.length scalar.O.results)
          (List.length oc.O.results);
        List.iter2 (check_op_parity ~ctx) oc.O.results scalar.O.results)
    lanes

let test_batch_matches_scalar_all_classes () =
  (* every defect class (and both placements for the open), through the
     paper's detection sequence: per-lane cycle-end voltages, sensed
     bits and sense separations agree with the scalar path to 1e-9 *)
  let ops = [ O.W1; O.W1; O.W0; O.R ] in
  let rs = [ 1e4; 3e5; 1e7; 1e8 ] in
  List.iter
    (fun (tag, kind, placement) -> batch_vs_scalar ~tag ~kind ~placement ~rs ops)
    [
      ("O1", D.Open_cell D.At_bitline_contact, D.True_bl);
      ("O2", D.Open_cell D.At_capacitor_contact, D.True_bl);
      ("O3", D.Open_cell D.At_plate_contact, D.True_bl);
      ("Sg", D.Short_to_gnd, D.True_bl);
      ("Sv", D.Short_to_vdd, D.True_bl);
      ("B1", D.Bridge_to_paired_bl, D.True_bl);
      ("B2", D.Bridge_to_neighbour, D.True_bl);
      ("O1/comp", D.Open_cell D.At_bitline_contact, D.Comp_bl);
    ]

let test_batch_matches_scalar_retention_stream () =
  (* a stream with an idle retention segment and two reads — the grid
     has multi-scale segments, the reads exercise the sense path twice *)
  let ops = [ O.W1; O.Pause 1e-4; O.R; O.W0; O.R ] in
  let rs = [ 2e5; 5e7 ] in
  batch_vs_scalar ~tag:"Sg/pause" ~kind:D.Short_to_gnd ~placement:D.True_bl
    ~rs ops;
  batch_vs_scalar ~tag:"B2/pause" ~kind:D.Bridge_to_neighbour
    ~placement:D.True_bl ~rs ops

let test_batch_exhausted_lane_isolated () =
  (* a lane with a non-finite initial state dies inside the ensemble,
     falls back to the scalar ladder, exhausts it, and surfaces as an
     [Error] slot — its batch mates must be bit-identical to the same
     batch run without the doomed lane's poison *)
  let ops = [ O.W0; O.R ] in
  let mk i vc =
    {
      O.defect = Some (D.v D.Short_to_gnd D.True_bl (1e5 *. float_of_int (i + 1)));
      vc_init = vc;
    }
  in
  let clean_lanes = List.init 4 (fun i -> mk i 2.4) in
  let poisoned_lanes =
    List.mapi
      (fun i l -> if i = 2 then { l with O.vc_init = Float.infinity } else l)
      clean_lanes
  in
  let fb0 = O.lane_fallbacks () in
  let clean =
    O.run_batch
      ~cache:(O.Cache.create ~enabled:false ())
      ~stress:nominal ~lanes:clean_lanes ops
  in
  Alcotest.(check int) "clean batch: no fallback" fb0 (O.lane_fallbacks ());
  let poisoned =
    O.run_batch
      ~cache:(O.Cache.create ~enabled:false ())
      ~stress:nominal ~lanes:poisoned_lanes ops
  in
  Alcotest.(check int)
    "exactly one lane fell back to the scalar ladder" (fb0 + 1)
    (O.lane_fallbacks ());
  List.iteri
    (fun i (c, p) ->
      match (i, c, p) with
      | 2, _, Error (O.Exhausted_retries _) -> ()
      | 2, _, Error e ->
        Alcotest.failf "doomed lane: unexpected error %s" (Printexc.to_string e)
      | 2, _, Ok _ -> Alcotest.fail "doomed lane unexpectedly converged"
      | _, Ok co, Ok po ->
        List.iter2
          (fun (cr : O.op_result) (pr : O.op_result) ->
            Alcotest.(check bool)
              (Printf.sprintf "lane %d vc_end bitwise-unaffected" i)
              true
              (Int64.equal
                 (Int64.bits_of_float cr.O.vc_end)
                 (Int64.bits_of_float pr.O.vc_end)))
          co.O.results po.O.results
      | _, _, _ -> Alcotest.failf "lane %d failed unexpectedly" i)
    (List.combine clean poisoned)

(* ------------------------------------------------------------------ *)
(* Extended stress axes: retention, disturb, timing trim               *)
(* ------------------------------------------------------------------ *)

let no_cache () = O.Cache.create ~enabled:false ()

let test_extension_neutral_identity () =
  (* a record spelling out every neutral default IS the nominal SC, and
     its electrical results are bit-identical — the back-compat
     contract behind reusable store fingerprints *)
  let explicit =
    { nominal with
      S.wait = 0.0; pattern = S.All_1; hammer = 0; leak = 0.0; couple = 0.0;
      twr_trim = 0.0; tras_trim = 0.0 }
  in
  Alcotest.(check bool) "explicit neutral = nominal" true (explicit = nominal);
  Alcotest.(check bool) "nominal is not extended" false (S.is_extended nominal);
  Alcotest.(check bool) "one moved axis is" true
    (S.is_extended (S.with_wait nominal 1.0));
  let ops = [ O.W1; O.R; O.W0; O.R ] in
  let a = O.run ~cache:(no_cache ()) ~stress:nominal ~vc_init:0.0 ops in
  let b = O.run ~cache:(no_cache ()) ~stress:explicit ~vc_init:0.0 ops in
  List.iter2
    (fun (ra : O.op_result) (rb : O.op_result) ->
      Alcotest.(check bool) "vc_end bitwise-identical" true
        (Int64.equal
           (Int64.bits_of_float ra.O.vc_end)
           (Int64.bits_of_float rb.O.vc_end)))
    a.O.results b.O.results

let test_effective_ops_insertion () =
  let stress = S.with_hammer (S.with_wait nominal 0.5) 3 in
  (* the pause/hammer pair lands immediately before the FIRST read *)
  (match O.effective_ops ~stress [ O.W1; O.R; O.R ] with
  | [ O.W1; O.Pause w; O.Ham 3; O.R; O.R ] ->
    Alcotest.(check (float 0.0)) "wait carried" 0.5 w
  | _ -> Alcotest.fail "expected w1 p0.5 ham3 r r");
  (* wait alone, hammer alone *)
  (match O.effective_ops ~stress:(S.with_wait nominal 0.2) [ O.W0; O.R ] with
  | [ O.W0; O.Pause _; O.R ] -> ()
  | _ -> Alcotest.fail "expected w0 p r");
  (match O.effective_ops ~stress:(S.with_hammer nominal 7) [ O.W0; O.R ] with
  | [ O.W0; O.Ham 7; O.R ] -> ()
  | _ -> Alcotest.fail "expected w0 ham7 r");
  (* neutral stress and read-free sequences pass through untouched *)
  Alcotest.(check bool) "neutral is identity" true
    (O.effective_ops ~stress:nominal [ O.W1; O.R ] = [ O.W1; O.R ]);
  Alcotest.(check bool) "no read, nothing to stress" true
    (O.effective_ops ~stress [ O.W1; O.W0 ] = [ O.W1; O.W0 ])

let test_pattern_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "name round-trips" true
        (S.pattern_of_name (S.pattern_name p) = Some p);
      Alcotest.(check bool) "float round-trips" true
        (S.pattern_of_float (S.float_of_pattern p) = p))
    [ S.All_0; S.All_1; S.Checkerboard ];
  Alcotest.(check bool) "aliases accepted" true
    (S.pattern_of_name "all0" = Some S.All_0
    && S.pattern_of_name "all1" = Some S.All_1
    && S.pattern_of_name "checkerboard" = Some S.Checkerboard);
  Alcotest.(check bool) "garbage refused" true (S.pattern_of_name "zebra" = None)

let test_trim_moves_phases () =
  let ph = Tm.phases T.default nominal in
  let ph_wr = Tm.phases T.default (S.with_twr_trim nominal 5e-9) in
  Alcotest.(check (float 1e-15)) "tWR trim delays the write driver"
    (ph.Tm.t_wr +. 5e-9) ph_wr.Tm.t_wr;
  Alcotest.(check (float 1e-15)) "word line untouched by tWR trim"
    ph.Tm.t_wl_off ph_wr.Tm.t_wl_off;
  let ph_ras = Tm.phases T.default (S.with_tras_trim nominal (-5e-9)) in
  Alcotest.(check (float 1e-15)) "tRAS trim cuts word-line-off short"
    (ph.Tm.t_wl_off -. 5e-9) ph_ras.Tm.t_wl_off;
  Alcotest.check_raises "trim past cycle end rejected"
    (Invalid_argument "Timing.phases: tras_trim pushes word line past cycle end")
    (fun () -> ignore (Tm.phases T.default (S.with_tras_trim nominal 4e-9)))

let test_leak_wait_decay () =
  (* over a 10 ms decay delay the intrinsic cell (tau ~ 0.1 s) still
     reads back its 1; adding the leakage-conductance stress
     (tau = c_cell/g_leak ~ 80 us << wait) loses it — the retention
     pair working end to end through [effective_ops] *)
  let run leak =
    let stress = S.with_leak (S.with_wait nominal 0.01) leak in
    let ops = O.effective_ops ~stress [ O.W1; O.R ] in
    bits (O.run ~cache:(no_cache ()) ~stress ~vc_init:0.0 ops)
  in
  Alcotest.(check string) "intrinsic cell retains over 10 ms" "1" (run 0.0);
  Alcotest.(check string) "leaky cell decays to 0" "0" (run 1e-9)

let test_couple_hammer_disturb () =
  (* hammering the aggressor row with an all-0 background drags a
     coupled victim's stored 1 down; an uncoupled victim shrugs it off *)
  let vc_after_hammer couple =
    let stress =
      S.with_pattern (S.with_couple nominal couple) S.All_0
    in
    let oc =
      O.run ~cache:(no_cache ()) ~stress ~vc_init:0.0
        [ O.W1; O.Ham 20 ]
    in
    (List.nth oc.O.results 1).O.vc_end
  in
  let uncoupled = vc_after_hammer 0.0 in
  let coupled = vc_after_hammer 0.5 in
  Alcotest.(check bool) "uncoupled victim holds its 1" true (uncoupled > 2.2);
  Alcotest.(check bool)
    (Printf.sprintf "coupling bleeds charge (%.3f < %.3f)" coupled uncoupled)
    true
    (coupled < uncoupled -. 0.05)

let test_batch_matches_scalar_extended_stress () =
  (* lane/scalar parity must survive every extension hook at once:
     leakage devices, coupling elements, pattern-driven neighbour
     state, and the inserted pause/hammer ops *)
  let stress =
    { nominal with
      S.wait = 1e-3; pattern = S.Checkerboard; hammer = 3; leak = 1e-11;
      couple = 0.2 }
  in
  let ops = O.effective_ops ~stress [ O.W1; O.W0; O.R ] in
  batch_vs_scalar ~stress ~tag:"O1/ext" ~kind:(D.Open_cell D.At_bitline_contact)
    ~placement:D.True_bl ~rs:[ 1e5; 1e7 ] ops;
  batch_vs_scalar ~stress ~tag:"B2/ext" ~kind:D.Bridge_to_neighbour
    ~placement:D.True_bl ~rs:[ 2e5; 5e7 ] ops

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let prop_healthy_readback =
  (* over the whole operable SC envelope, a healthy cell returns what
     was last written *)
  QCheck.Test.make ~count:15 ~name:"healthy cell reads back last write"
    QCheck.(
      quad (float_range 58e-9 90e-9) (float_range 2.1 2.7)
        (float_range (-20.0) 70.0) (int_range 0 1))
    (fun (tcyc, vdd, temp_c, first_bit) ->
      let stress = { S.nominal with S.tcyc; vdd; temp_c; duty = 0.5 } in
      let w b = if b = 1 then O.W1 else O.W0 in
      let ops = [ w first_bit; O.R; w (1 - first_bit); O.R ] in
      let oc = O.run ~stress ~vc_init:(vdd /. 2.0) ops in
      O.sensed_bits oc = [ first_bit; 1 - first_bit ])

let prop_open_residual_monotone =
  (* the residual after a failed w0 grows monotonically with the open *)
  QCheck.Test.make ~count:20 ~name:"w0 residual monotone in R"
    QCheck.(pair (float_range 2e4 8e5) (float_range 1.2 2.5))
    (fun (r, factor) ->
      let residual r =
        let oc =
          O.run ~stress:nominal ~defect:(open_defect r) ~vc_init:2.4 [ O.W0 ]
        in
        (List.hd oc.O.results).O.vc_end
      in
      residual (r *. factor) >= residual r -. 5e-3)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "dramstress_dram"
    [
      ( "stress+timing",
        [
          tc "stress validation" test_stress_validate;
          tc "axis set/get" test_stress_axes;
          tc "phase ordering" test_timing_structure;
          tc "write window shrinks super-linearly"
            test_timing_write_window_shrinks_superlinearly;
          tc "sense instant fixed" test_timing_sense_fixed;
          tc "duty moves word-line close" test_timing_duty_moves_wl_off;
          tc "too-short cycle rejected" test_timing_too_short;
        ] );
      ( "healthy column",
        [
          tc "functional read/write" test_good_cell_functional;
          tc "full-rail writes" test_good_cell_rails;
          tc "read restores" test_read_is_restoring;
          tc "read writes back 0" test_read_destructive_below_threshold;
          tc "healthy separation" test_separation_healthy;
          tc "retention over 100 us" test_pause_retains_recent_write;
          tc "empty sequence rejected" test_empty_sequence_rejected;
          tc "sequence parsing" test_parse_seq;
        ] );
      ( "defects",
        [
          tc "open blocks w0" test_open_blocks_w0;
          tc "O1/O2/O3 equivalent" test_open_sites_equivalent;
          tc "paper sequence detects open" test_open_detected_by_paper_sequence;
          tc "small open escapes" test_open_escapes_when_small;
          tc "complementary placement inverts" test_comp_placement_inverts_logic;
          tc "Sg leaks a stored 1" test_short_to_gnd_leaks_one;
          tc "Sv lifts a stored 0" test_short_to_vdd_lifts_zero;
          tc "huge short harmless" test_short_harmless_when_huge;
          tc "hard bridge collapses separation" test_bridge_weld_collapses_separation;
          tc "neighbour bridge couples" test_neighbour_bridge_couples_over_pause;
          tc "neighbour bridge detected hot" test_neighbour_bridge_detected_hot;
        ] );
      ( "stress directions",
        [
          tc "shorter cycle stresses w0" test_shorter_cycle_stresses_w0;
          tc "higher Vdd stresses w0" test_higher_vdd_stresses_w0;
          tc "Vdd residual proportionality" test_vdd_ratio_matches_paper;
          tc "temperature leakage direction" test_temperature_leakage_direction;
        ] );
      ( "engine integration",
        [
          tc "incremental matches naive assembly" test_incremental_matches_naive;
          tc "memo cache replays identical runs" test_memo_cache_replays;
        ] );
      ( "retry ladder",
        [
          tc "empty policy propagates the error" test_no_retry_propagates;
          tc "damped stage rescues the run" test_retry_ladder_rescues;
          tc "exhausted ladder raises" test_retry_ladder_exhausts;
          tc "telemetry counters reconcile" test_retry_telemetry_reconciles;
        ] );
      ( "deadlines+chaos",
        [
          tc "timeout propagates untried" test_deadline_timeout_propagates;
          tc "generous deadline unobtrusive"
            test_deadline_generous_is_unobtrusive;
          tc "deadline validation" test_deadline_validation;
          tc "hung point cut off, sweep finishes" test_sweep_hung_point_cut_off;
          tc "transient NaN rescued by halving" test_nan_once_rescued_by_halving;
          tc "sweep survives singular chaos" test_sweep_survives_singular_chaos;
        ] );
      ( "batched parity",
        [
          tc "all defect classes match scalar"
            test_batch_matches_scalar_all_classes;
          tc "retention stream matches scalar"
            test_batch_matches_scalar_retention_stream;
          tc "exhausted lane isolated" test_batch_exhausted_lane_isolated;
        ] );
      ( "extended stress axes",
        [
          tc "explicit neutral = nominal, bit for bit"
            test_extension_neutral_identity;
          tc "pause/hammer inserted before first read"
            test_effective_ops_insertion;
          tc "pattern codec round-trips" test_pattern_roundtrip;
          tc "timing trims move the right phases" test_trim_moves_phases;
          tc "leak + wait decays a stored 1" test_leak_wait_decay;
          tc "coupled hammer disturbs the victim" test_couple_hammer_disturb;
          tc "batch parity under every extension hook"
            test_batch_matches_scalar_extended_stress;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_healthy_readback;
          QCheck_alcotest.to_alcotest prop_open_residual_monotone;
        ] );
    ]
