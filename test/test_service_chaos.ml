(* Server-level chaos: SIGKILL the campaign service mid-campaign,
   restart it on the same sharded store, resubmit, and require that
   completed points are never re-simulated and that the final store is
   record-identical to an unkilled single-process run.

   Fork-based, so this lives in its own binary: OCaml refuses
   [Unix.fork] once any domain has ever been spawned, which is why the
   parent only ever uses [jobs = 1] (the inline path of [Par]). The
   forked servers are free to thread and spawn as they like. *)

module Cp = Dramstress_campaign
module Manifest = Cp.Manifest
module Plan = Cp.Plan
module Runner = Cp.Runner
module Pr = Cp.Protocol
module Svc = Cp.Service
module St = Dramstress_util.Store
module Chaos = Dramstress_util.Chaos

let with_dir f =
  let dir = Filename.temp_file "dramstress_chaos" "" in
  Sys.remove dir;
  let rec rm p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  Fun.protect
    ~finally:(fun () -> try rm dir with Sys_error _ -> ())
    (fun () -> f dir)

let manifest_text =
  {|
(campaign
  (name chaos-t)
  (defects (O1 true))
  (stress nominal)
  (stress low-vdd (vdd 2.1))
  (detections (seq "w1 w1 w0 r0"))
  (border (r-min 1e4) (r-max 1e8) (grid-points 5) (rel-tol 0.05)))
|}

(* The daemon under test, optionally with torn-write chaos armed so
   the kill also exercises truncated-record recovery. [sandbox]
   defaults off to preserve the original in-process scenario; the
   supervision tests below turn it on, with [env] setting
   DRAMSTRESS_WORKER_KILL before the pool forks so workers inherit
   the kill spec. *)
let fork_server ?chaos ?(sandbox = false) ?worker_deaths ?env ~dir ~socket () =
  match Unix.fork () with
  | 0 ->
    (try
       Option.iter (fun (k, v) -> Unix.putenv k v) env;
       Option.iter (fun spec -> Chaos.configure ~seed:7 spec) chaos;
       let store = St.open_ ~name:"chaos-t" dir in
       let srv =
         Svc.create ~jobs:1 ~sandbox ?max_task_deaths:worker_deaths ~store
           ~socket_path:socket ()
       in
       Svc.serve srv
     with _ -> ());
    Unix._exit 0
  | pid -> pid

let fork_client ~socket text =
  match Unix.fork () with
  | 0 ->
    (* the submission this client drives is expected to die with the
       first server; any outcome (including transport failure) is fine *)
    (try
       ignore
         (Svc.Client.submit_retrying ~attempts:8 ~delay:0.25 ~socket text)
     with _ -> ());
    Unix._exit 0
  | pid -> pid

let done_points m dir =
  let s = St.open_ ~name:"chaos-t" dir in
  let sts = Runner.states ~store:s m in
  St.close s;
  List.length
    (List.filter (fun (_, st) -> match st with `Done _ -> true | _ -> false) sts)

let test_kill_restart_resubmit () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  with_dir @@ fun srv_dir ->
  with_dir @@ fun ref_dir ->
  let socket = Filename.temp_file "dramstress_chaos" ".sock" in
  Sys.remove socket;
  let m = Manifest.of_string manifest_text in
  let points = Plan.points m in
  (* pin the sharded layout before any process races to create it *)
  let s = St.open_ ~shards:4 ~name:"chaos-t" srv_dir in
  St.close s;
  let server1 =
    fork_server ~chaos:"truncate_checkpoint@9" ~dir:srv_dir ~socket ()
  in
  let client1 = fork_client ~socket manifest_text in
  (* wait until at least one point is durably recorded, then murder
     the daemon mid-campaign *)
  let rec wait_progress n =
    if n = 0 then Alcotest.fail "no point completed before the kill"
    else if done_points m srv_dir < 1 then begin
      Unix.sleepf 0.25;
      wait_progress (n - 1)
    end
  in
  wait_progress 480;
  Unix.kill server1 Sys.sigkill;
  ignore (Unix.waitpid [] server1);
  ignore (Unix.waitpid [] client1);
  let completed_before = done_points m srv_dir in
  Alcotest.(check bool) "progress survived the kill" true
    (completed_before >= 1);
  (* restart on the same store, resubmit from this process *)
  let server2 = fork_server ~dir:srv_dir ~socket () in
  (match
     Svc.Client.submit_retrying ~attempts:40 ~delay:0.25 ~socket
       manifest_text
   with
  | Error msg -> Alcotest.failf "resubmission rejected: %s" msg
  | Ok o ->
    Alcotest.(check int) "full plan" (List.length points) o.Svc.Client.planned;
    Alcotest.(check int) "no failures" 0 o.Svc.Client.failed;
    (* the acceptance criterion: zero re-simulation of completed points *)
    Alcotest.(check int) "completed points reused, not re-simulated"
      completed_before o.Svc.Client.reused;
    Alcotest.(check int) "only the lost points simulated"
      (List.length points - completed_before)
      (o.Svc.Client.simulated + o.Svc.Client.deduped));
  (match Svc.Client.request ~socket Pr.Shutdown with
  | Pr.Bye -> ()
  | _ -> Alcotest.fail "expected bye");
  ignore (Unix.waitpid [] server2);
  (* an unkilled single-process run is the reference: the store that
     lived through kill + restart must hold record-identical results
     for every planned point *)
  let rs = St.open_ ~name:"ref" ref_dir in
  let r = Runner.run ~jobs:1 ~store:rs m in
  St.close rs;
  Alcotest.(check int) "reference run clean" 0
    (List.length r.Runner.failures);
  let rs = St.open_ ~name:"ref" ref_dir in
  let ss = St.open_ ~name:"chaos-t" srv_dir in
  List.iter
    (fun p ->
      let key = Plan.descriptor m p in
      let survived = St.find ss ~key and reference = St.find rs ~key in
      Alcotest.(check bool) "point recorded on both sides" true
        (survived <> None && reference <> None);
      Alcotest.(check (option string)) "record-identical to unkilled run"
        reference survived)
    points;
  St.close rs;
  St.close ss;
  try Sys.remove socket with Sys_error _ -> ()

(* ---- sandboxed worker supervision ---- *)

let fresh_socket () =
  let s = Filename.temp_file "dramstress_chaos" ".sock" in
  Sys.remove s;
  s

let counters ~socket =
  match Svc.Client.request ~socket Pr.Counters with
  | Pr.Counter_values cs -> cs
  | _ -> Alcotest.fail "expected counters"

let counter cs name =
  match List.assoc_opt name cs with Some n -> n | None -> 0

(* the supervisor restarts corpses asynchronously; poll the live daemon
   until the restart counter catches up with the deaths we caused *)
let await_restarts ~socket want =
  let rec go n =
    let got = counter (counters ~socket) "campaign.service.worker_restarts" in
    if got >= want then got
    else if n = 0 then
      Alcotest.failf "only %d worker restart(s), want >= %d" got want
    else begin
      Unix.sleepf 0.05;
      go (n - 1)
    end
  in
  go 100

let shutdown_clean ~socket server =
  (match Svc.Client.request ~socket Pr.Shutdown with
  | Pr.Bye -> ()
  | _ -> Alcotest.fail "expected bye");
  match Unix.waitpid [] server with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> Alcotest.failf "server exited %d" n
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
    Alcotest.failf "server killed by signal %d" s

(* SIGKILL the worker process mid-point, twice: the daemon must
   survive, retry the point on fresh workers, land it on the third
   attempt, and account exactly one restart per corpse *)
let test_sandbox_worker_kill_survives () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  with_dir @@ fun dir ->
  let socket = fresh_socket () in
  let server =
    fork_server ~sandbox:true ~worker_deaths:3
      ~env:("DRAMSTRESS_WORKER_KILL", "low-vdd:2") ~dir ~socket ()
  in
  (match
     Svc.Client.submit_retrying ~attempts:40 ~delay:0.25 ~socket manifest_text
   with
  | Error msg -> Alcotest.failf "submission rejected: %s" msg
  | Ok o ->
    Alcotest.(check int) "full plan" 2 o.Svc.Client.planned;
    (* the murdered point retried to completion: no failures at all *)
    Alcotest.(check int) "no failures despite two worker kills" 0
      o.Svc.Client.failed;
    Alcotest.(check int) "everything simulated" 2 o.Svc.Client.simulated);
  let restarts = await_restarts ~socket 2 in
  Alcotest.(check int) "exactly one restart per kill" 2 restarts;
  let cs = counters ~socket in
  Alcotest.(check int) "a retried point is not poison" 0
    (counter cs "campaign.service.poison_points");
  shutdown_clean ~socket server;
  try Sys.remove socket with Sys_error _ -> ()

(* a point that kills EVERY worker that touches it: quarantined as
   Failed after K deaths, the other point lands, the daemon lives, and
   the surviving record is byte-identical to an uninjured local run *)
let test_sandbox_poison_point_quarantined () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  with_dir @@ fun srv_dir ->
  with_dir @@ fun ref_dir ->
  let socket = fresh_socket () in
  let server =
    fork_server ~sandbox:true ~worker_deaths:3
      ~env:("DRAMSTRESS_WORKER_KILL", "low-vdd:1000") ~dir:srv_dir ~socket ()
  in
  (match
     Svc.Client.submit_retrying ~attempts:40 ~delay:0.25 ~socket manifest_text
   with
  | Error msg -> Alcotest.failf "submission rejected: %s" msg
  | Ok o ->
    Alcotest.(check int) "full plan" 2 o.Svc.Client.planned;
    Alcotest.(check int) "the poison point is the only failure" 1
      o.Svc.Client.failed;
    Alcotest.(check int) "the healthy point landed" 1 o.Svc.Client.simulated);
  ignore (await_restarts ~socket 3);
  let cs = counters ~socket in
  Alcotest.(check int) "poison quarantined once" 1
    (counter cs "campaign.service.poison_points");
  (* graceful degradation: the daemon still answers *)
  (match Svc.Client.request ~socket Pr.Status with
  | Pr.Status_report _ -> ()
  | _ -> Alcotest.fail "daemon must survive a poison point");
  shutdown_clean ~socket server;
  (* the surviving record vs an uninjured single-process reference *)
  let m = Manifest.of_string manifest_text in
  let rs = St.open_ ~name:"ref" ref_dir in
  let r = Runner.run ~jobs:1 ~store:rs m in
  St.close rs;
  Alcotest.(check int) "reference run clean" 0 (List.length r.Runner.failures);
  let rs = St.open_ ~name:"ref" ref_dir in
  let ss = St.open_ ~name:"chaos-t" srv_dir in
  List.iter
    (fun p ->
      let descr = Format.asprintf "%a" Plan.pp_point p in
      let key = Plan.descriptor m p in
      let survived = St.find ss ~key and reference = St.find rs ~key in
      let contains s sub =
        let n = String.length s and k = String.length sub in
        let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
        go 0
      in
      if contains descr "low-vdd" then
        Alcotest.(check (option string)) "poison point has no result record"
          None survived
      else
        Alcotest.(check (option string))
          "surviving record byte-identical to uninjured run" reference
          survived)
    (Plan.points m);
  St.close rs;
  St.close ss;
  try Sys.remove socket with Sys_error _ -> ()

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "dramstress_service_chaos"
    [
      ( "service-chaos",
        [
          tc "kill, restart, resubmit: no re-simulation"
            test_kill_restart_resubmit;
          tc "sandbox: SIGKILLed worker retried, daemon survives"
            test_sandbox_worker_kill_survives;
          tc "sandbox: poison point quarantined after K deaths"
            test_sandbox_poison_point_quarantined;
        ] );
    ]
