(* Server-level chaos: SIGKILL the campaign service mid-campaign,
   restart it on the same sharded store, resubmit, and require that
   completed points are never re-simulated and that the final store is
   record-identical to an unkilled single-process run.

   Fork-based, so this lives in its own binary: OCaml refuses
   [Unix.fork] once any domain has ever been spawned, which is why the
   parent only ever uses [jobs = 1] (the inline path of [Par]). The
   forked servers are free to thread and spawn as they like. *)

module Cp = Dramstress_campaign
module Manifest = Cp.Manifest
module Plan = Cp.Plan
module Runner = Cp.Runner
module Pr = Cp.Protocol
module Svc = Cp.Service
module St = Dramstress_util.Store
module Chaos = Dramstress_util.Chaos

let with_dir f =
  let dir = Filename.temp_file "dramstress_chaos" "" in
  Sys.remove dir;
  let rec rm p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  Fun.protect
    ~finally:(fun () -> try rm dir with Sys_error _ -> ())
    (fun () -> f dir)

let manifest_text =
  {|
(campaign
  (name chaos-t)
  (defects (O1 true))
  (stress nominal)
  (stress low-vdd (vdd 2.1))
  (detections (seq "w1 w1 w0 r0"))
  (border (r-min 1e4) (r-max 1e8) (grid-points 5) (rel-tol 0.05)))
|}

(* the daemon under test, optionally with torn-write chaos armed so
   the kill also exercises truncated-record recovery *)
let fork_server ?chaos ~dir ~socket () =
  match Unix.fork () with
  | 0 ->
    (try
       Option.iter (fun spec -> Chaos.configure ~seed:7 spec) chaos;
       let store = St.open_ ~name:"chaos-t" dir in
       let srv = Svc.create ~jobs:1 ~store ~socket_path:socket () in
       Svc.serve srv
     with _ -> ());
    Unix._exit 0
  | pid -> pid

let fork_client ~socket text =
  match Unix.fork () with
  | 0 ->
    (* the submission this client drives is expected to die with the
       first server; any outcome (including transport failure) is fine *)
    (try
       ignore
         (Svc.Client.submit_retrying ~attempts:8 ~delay:0.25 ~socket text)
     with _ -> ());
    Unix._exit 0
  | pid -> pid

let done_points m dir =
  let s = St.open_ ~name:"chaos-t" dir in
  let sts = Runner.states ~store:s m in
  St.close s;
  List.length
    (List.filter (fun (_, st) -> match st with `Done _ -> true | _ -> false) sts)

let test_kill_restart_resubmit () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  with_dir @@ fun srv_dir ->
  with_dir @@ fun ref_dir ->
  let socket = Filename.temp_file "dramstress_chaos" ".sock" in
  Sys.remove socket;
  let m = Manifest.of_string manifest_text in
  let points = Plan.points m in
  (* pin the sharded layout before any process races to create it *)
  let s = St.open_ ~shards:4 ~name:"chaos-t" srv_dir in
  St.close s;
  let server1 =
    fork_server ~chaos:"truncate_checkpoint@9" ~dir:srv_dir ~socket ()
  in
  let client1 = fork_client ~socket manifest_text in
  (* wait until at least one point is durably recorded, then murder
     the daemon mid-campaign *)
  let rec wait_progress n =
    if n = 0 then Alcotest.fail "no point completed before the kill"
    else if done_points m srv_dir < 1 then begin
      Unix.sleepf 0.25;
      wait_progress (n - 1)
    end
  in
  wait_progress 480;
  Unix.kill server1 Sys.sigkill;
  ignore (Unix.waitpid [] server1);
  ignore (Unix.waitpid [] client1);
  let completed_before = done_points m srv_dir in
  Alcotest.(check bool) "progress survived the kill" true
    (completed_before >= 1);
  (* restart on the same store, resubmit from this process *)
  let server2 = fork_server ~dir:srv_dir ~socket () in
  (match
     Svc.Client.submit_retrying ~attempts:40 ~delay:0.25 ~socket
       manifest_text
   with
  | Error msg -> Alcotest.failf "resubmission rejected: %s" msg
  | Ok o ->
    Alcotest.(check int) "full plan" (List.length points) o.Svc.Client.planned;
    Alcotest.(check int) "no failures" 0 o.Svc.Client.failed;
    (* the acceptance criterion: zero re-simulation of completed points *)
    Alcotest.(check int) "completed points reused, not re-simulated"
      completed_before o.Svc.Client.reused;
    Alcotest.(check int) "only the lost points simulated"
      (List.length points - completed_before)
      (o.Svc.Client.simulated + o.Svc.Client.deduped));
  (match Svc.Client.request ~socket Pr.Shutdown with
  | Pr.Bye -> ()
  | _ -> Alcotest.fail "expected bye");
  ignore (Unix.waitpid [] server2);
  (* an unkilled single-process run is the reference: the store that
     lived through kill + restart must hold record-identical results
     for every planned point *)
  let rs = St.open_ ~name:"ref" ref_dir in
  let r = Runner.run ~jobs:1 ~store:rs m in
  St.close rs;
  Alcotest.(check int) "reference run clean" 0
    (List.length r.Runner.failures);
  let rs = St.open_ ~name:"ref" ref_dir in
  let ss = St.open_ ~name:"chaos-t" srv_dir in
  List.iter
    (fun p ->
      let key = Plan.descriptor m p in
      let survived = St.find ss ~key and reference = St.find rs ~key in
      Alcotest.(check bool) "point recorded on both sides" true
        (survived <> None && reference <> None);
      Alcotest.(check (option string)) "record-identical to unkilled run"
        reference survived)
    points;
  St.close rs;
  St.close ss;
  try Sys.remove socket with Sys_error _ -> ()

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "dramstress_service_chaos"
    [
      ( "service-chaos",
        [ tc "kill, restart, resubmit: no re-simulation"
            test_kill_restart_resubmit ] );
    ]
