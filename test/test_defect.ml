(* Tests for the defect catalog and its classification. *)

module D = Dramstress_defect.Defect

let test_catalog_complete () =
  Alcotest.(check int) "seven defects" 7 (List.length D.catalog);
  let ids = List.map (fun (e : D.entry) -> e.D.id) D.catalog in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " present") true (List.mem id ids))
    [ "O1"; "O2"; "O3"; "Sg"; "Sv"; "B1"; "B2" ]

let test_find_entry () =
  (match D.find_entry "sg" with
  | Some e -> Alcotest.(check string) "case-insensitive" "Sg" e.D.id
  | None -> Alcotest.fail "Sg not found");
  Alcotest.(check bool) "missing" true (D.find_entry "O9" = None)

let test_polarity () =
  Alcotest.(check bool) "opens fail high" true
    (D.polarity (D.Open_cell D.At_bitline_contact) = D.High_r_fails);
  Alcotest.(check bool) "shorts fail low" true
    (D.polarity D.Short_to_gnd = D.Low_r_fails);
  Alcotest.(check bool) "bridges fail low" true
    (D.polarity D.Bridge_to_paired_bl = D.Low_r_fails)

let test_victims () =
  Alcotest.(check int) "open attacks 0" 0
    (D.victim_bit (D.Open_cell D.At_plate_contact));
  Alcotest.(check int) "Sg attacks 1" 1 (D.victim_bit D.Short_to_gnd);
  Alcotest.(check int) "Sv attacks 0" 0 (D.victim_bit D.Short_to_vdd)

let test_logical_victim_inverts () =
  List.iter
    (fun (e : D.entry) ->
      let t = D.logical_victim e.D.kind D.True_bl in
      let c = D.logical_victim e.D.kind D.Comp_bl in
      Alcotest.(check int) (e.D.id ^ " true = physical") (D.victim_bit e.D.kind) t;
      Alcotest.(check int) (e.D.id ^ " comp inverted") (1 - t) c)
    D.catalog

let test_constructors () =
  let d = D.v D.Short_to_vdd D.Comp_bl 1e5 in
  Alcotest.(check (float 0.0)) "r" 1e5 d.D.r;
  let d' = D.with_r d 2e5 in
  Alcotest.(check (float 0.0)) "with_r" 2e5 d'.D.r;
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Defect.v: non-positive resistance") (fun () ->
      ignore (D.v D.Short_to_gnd D.True_bl 0.0));
  Alcotest.check_raises "with_r non-positive"
    (Invalid_argument "Defect.with_r: non-positive resistance") (fun () ->
      ignore (D.with_r d (-1.0)))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  scan 0

let test_printing () =
  let d = D.v (D.Open_cell D.At_capacitor_contact) D.True_bl 2e5 in
  Alcotest.(check string) "pp" "O2 (true) R=200 k"
    (Format.asprintf "%a" D.pp d);
  let fig7 = D.describe_figure7 () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in figure 7") true
        (contains fig7 needle))
    [ "O1"; "Sg"; "B2" ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "dramstress_defect"
    [
      ( "catalog",
        [
          tc "completeness" test_catalog_complete;
          tc "lookup" test_find_entry;
          tc "polarity" test_polarity;
          tc "victim bits" test_victims;
          tc "logical victim inversion" test_logical_victim_inverts;
          tc "constructors and validation" test_constructors;
          tc "printing" test_printing;
        ] );
    ]
